package analysis_test

import (
	"strings"
	"testing"

	"biaslab/internal/analysis"
	"biaslab/internal/analysis/dataflow"
	"biaslab/internal/compiler"
	"biaslab/internal/isa"
	"biaslab/internal/linker"
	"biaslab/internal/loader"
	"biaslab/internal/machine"
	"biaslab/internal/obj"
)

// These fixtures pin the exact-vs-approximate frontier of the footprint
// analysis: each names one construct the dataflow engine must either see
// through (and stay exact) or refuse honestly (and report why). Every
// fixture is also cross-validated against the simulator by stack painting:
// the deepest byte the program actually writes below its initial SP must be
// covered by the static MaxDepth, whatever the classification.

func compileFixture(t *testing.T, src string) *linker.Executable {
	t.Helper()
	objs, _, err := compiler.Compile([]compiler.Source{{Name: "fixture", Text: src}}, compiler.Config{Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := linker.Link(objs, linker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

// deepestWrite runs exe and reports how many bytes below the initial SP the
// program wrote, found by painting the stack with a sentinel and scanning
// for the lowest repainted byte. Writes are a lower bound on the true
// footprint (reads leave no trace), which is exactly the direction a
// soundness check needs.
func deepestWrite(t *testing.T, exe *linker.Executable) uint64 {
	t.Helper()
	img, err := loader.Load(exe, loader.Options{
		Env:  loader.SyntheticEnv(512),
		Args: []string{"fixture"},
	})
	if err != nil {
		t.Fatal(err)
	}
	const paint = 1 << 16
	lo := img.SP - paint
	const sentinel = 0xA5
	for a := lo; a < img.SP; a++ {
		img.Mem[a] = sentinel
	}
	cfg, ok := machine.ConfigByName("core2")
	if !ok {
		t.Fatal("core2 not registered")
	}
	res, err := machine.New(cfg).Run(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("fixture exited %d", res.ExitCode)
	}
	for a := lo; a < img.SP; a++ {
		if img.Mem[a] != sentinel {
			return img.SP - a
		}
	}
	return 0
}

// checkSound asserts the footprint covers every byte the simulator saw
// written below SP.
func checkSound(t *testing.T, fp *analysis.StackFootprint, written uint64) {
	t.Helper()
	if int64(written) > fp.MaxDepth {
		t.Errorf("simulator wrote %d bytes below SP but static MaxDepth is only %d", written, fp.MaxDepth)
	}
}

const fixtureDirectRec = `
int fact(int n) {
	int local[8];
	local[n & 7] = n;
	if (n <= 1) {
		return local[n & 7];
	}
	return n * fact(n - 1);
}
void main() {
	checksum(fact(10));
}
`

// TestFootprintDirectRecursion: self-recursion on a provably decreasing
// parameter. The engine must prove a frame bound, keep the footprint exact,
// and the bound must cover the simulated recursion depth.
func TestFootprintDirectRecursion(t *testing.T) {
	exe := compileFixture(t, fixtureDirectRec)
	info, err := dataflow.Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	fact := exe.Symbols["fact"]
	scc := info.SCCID[fact]
	if !info.Recursive[scc] {
		t.Fatal("fact not marked recursive")
	}
	if bound, ok := info.Bounds[scc]; !ok {
		t.Error("no frame bound proven for fact(n-1) recursion")
	} else if bound < 10 {
		t.Errorf("frame bound %d cannot cover fact(10)'s 10 live frames", bound)
	}
	fp, err := analysis.ExtractStackFootprint(exe, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Approx {
		t.Errorf("bounded direct recursion should stay exact; reasons: %v", fp.ApproxReasons)
	}
	checkSound(t, fp, deepestWrite(t, exe))
}

const fixtureMutualRec = `
int isEven(int n) {
	int pad[4];
	pad[n & 3] = n;
	if (n == 0) {
		return 1 - pad[3] + pad[3];
	}
	return isOdd(n - 1);
}
int isOdd(int n) {
	if (n == 0) {
		return 0;
	}
	return isEven(n - 1);
}
void main() {
	checksum(isEven(9) * 10 + isOdd(9));
}
`

// TestFootprintMutualRecursion: a two-function cycle. Same contract as
// direct recursion — the decreasing-parameter induction spans the component.
func TestFootprintMutualRecursion(t *testing.T) {
	exe := compileFixture(t, fixtureMutualRec)
	info, err := dataflow.Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	even, odd := exe.Symbols["isEven"], exe.Symbols["isOdd"]
	if info.SCCID[even] != info.SCCID[odd] {
		t.Fatal("isEven and isOdd not in one SCC")
	}
	scc := info.SCCID[even]
	if !info.Recursive[scc] {
		t.Fatal("mutual recursion not marked recursive")
	}
	fp, err := analysis.ExtractStackFootprint(exe, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bound, ok := info.Bounds[scc]; ok {
		if bound < 10 {
			t.Errorf("frame bound %d cannot cover isEven(9)'s 10 live frames", bound)
		}
		if fp.Approx {
			t.Errorf("bounded mutual recursion should stay exact; reasons: %v", fp.ApproxReasons)
		}
	} else {
		// The engine may decline the cross-function induction; then the
		// footprint must degrade honestly, naming the recursion.
		if !fp.Approx {
			t.Error("unbounded mutual recursion cannot be exact")
		}
		wantReason(t, fp, "recursion")
	}
	checkSound(t, fp, deepestWrite(t, exe))
}

const fixtureUnboundedRec = `
int collatz(int n, int steps) {
	int scratch[2];
	scratch[n & 1] = steps;
	if (n == 1) {
		return scratch[1 & n];
	}
	if ((n & 1) == 1) {
		return collatz(3 * n + 1, steps + 1);
	}
	return collatz(n / 2, steps + 1);
}
void main() {
	checksum(collatz(27, 0));
}
`

// TestFootprintUnboundedRecursion: recursion with no decreasing measure the
// engine can prove (3n+1 grows). The footprint must be approximate, the
// reason must name the recursion, and the reasons list must be sorted and
// deduplicated — the satellite contract for ApproxReasons.
func TestFootprintUnboundedRecursion(t *testing.T) {
	exe := compileFixture(t, fixtureUnboundedRec)
	info, err := dataflow.Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	scc := info.SCCID[exe.Symbols["collatz"]]
	if !info.Recursive[scc] {
		t.Fatal("collatz not marked recursive")
	}
	if bound, ok := info.Bounds[scc]; ok {
		t.Fatalf("engine claims frame bound %d for a Collatz recursion", bound)
	}
	fp, err := analysis.ExtractStackFootprint(exe, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Approx {
		t.Fatal("unbounded recursion classified exact")
	}
	wantReason(t, fp, "recursion")
	for i := 1; i < len(fp.ApproxReasons); i++ {
		if fp.ApproxReasons[i] <= fp.ApproxReasons[i-1] {
			t.Errorf("ApproxReasons not sorted/deduped: %v", fp.ApproxReasons)
		}
	}
	// The simulator demonstrates why the Approx flag matters: collatz(27)
	// recurses 112 deep and writes far below the static MaxDepth. An exact
	// claim here would be a lie — which is the property this fixture pins.
	if written := deepestWrite(t, exe); int64(written) <= fp.MaxDepth {
		t.Errorf("fixture too shallow to demonstrate unsoundness of an exact claim: wrote %d, MaxDepth %d", written, fp.MaxDepth)
	}
}

func wantReason(t *testing.T, fp *analysis.StackFootprint, frag string) {
	t.Helper()
	for _, r := range fp.ApproxReasons {
		if strings.Contains(r, frag) {
			return
		}
	}
	t.Errorf("no ApproxReason mentions %q: %v", frag, fp.ApproxReasons)
}

// asmFunc assembles one function body into an object symbol.
type asmFunc struct {
	name string
	code []isa.Inst
}

// buildJalrTable hand-assembles the program cmini cannot write: an indirect
// call through a table of function addresses in .data. _start masks an index
// to {0, 8}, loads the table entry and jalr's through it; the two callees
// have different frame depths.
//
//	_start: idx = cycles() & 8        // runtime value, statically in {0,8}
//	        target = table[idx/8]
//	        jalr target
//	        halt
func buildJalrTable(t *testing.T) *linker.Executable {
	t.Helper()
	funcs := []asmFunc{
		{"main", []isa.Inst{
			{Op: isa.OpAddi, Rd: isa.SP, Rs1: isa.SP, Imm: -16},
			{Op: isa.OpStq, Rs2: isa.RA, Rs1: isa.SP, Imm: 8},
			{Op: isa.OpAddi, Rd: isa.A0, Rs1: isa.R0, Imm: isa.SysCycles},
			{Op: isa.OpSys, Rd: isa.R0, Rs1: isa.A0},              // RV ← cycle count: a runtime value
			{Op: isa.OpAndi, Rd: isa.T0, Rs1: isa.RV, Imm: 8},     // idx ∈ {0, 8}
			{Op: isa.OpLui, Rd: isa.AT, Imm: 0},                   // hi16(table), reloc
			{Op: isa.OpOri, Rd: isa.AT, Rs1: isa.AT, Imm: 0},      // lo16(table), reloc
			{Op: isa.OpAdd, Rd: isa.AT, Rs1: isa.AT, Rs2: isa.T0}, // &table[idx/8]
			{Op: isa.OpLdq, Rd: isa.T1, Rs1: isa.AT},              // target
			{Op: isa.OpJalr, Rd: isa.RA, Rs1: isa.T1},             // indirect call
			{Op: isa.OpLdq, Rd: isa.RA, Rs1: isa.SP, Imm: 8},
			{Op: isa.OpAddi, Rd: isa.SP, Rs1: isa.SP, Imm: 16},
			{Op: isa.OpJalr, Rd: isa.R0, Rs1: isa.RA}, // return to crt0
		}},
		{"shallow", []isa.Inst{
			{Op: isa.OpAddi, Rd: isa.SP, Rs1: isa.SP, Imm: -16},
			{Op: isa.OpStq, Rs2: isa.RA, Rs1: isa.SP, Imm: 8},
			{Op: isa.OpAddi, Rd: isa.SP, Rs1: isa.SP, Imm: 16},
			{Op: isa.OpJalr, Rd: isa.R0, Rs1: isa.RA}, // return
		}},
		{"deep", []isa.Inst{
			{Op: isa.OpAddi, Rd: isa.SP, Rs1: isa.SP, Imm: -256},
			{Op: isa.OpStq, Rs2: isa.RA, Rs1: isa.SP, Imm: 248},
			{Op: isa.OpStq, Rs2: isa.RA, Rs1: isa.SP}, // touch the frame bottom
			{Op: isa.OpLdq, Rd: isa.RA, Rs1: isa.SP, Imm: 248},
			{Op: isa.OpAddi, Rd: isa.SP, Rs1: isa.SP, Imm: 256},
			{Op: isa.OpJalr, Rd: isa.R0, Rs1: isa.RA}, // return
		}},
	}

	o := &obj.Object{Name: "jalrfix"}
	var text []byte
	for _, f := range funcs {
		start := uint64(len(text))
		for i, in := range f.code {
			if f.name == "main" && in.Op == isa.OpLui {
				o.Relocs = append(o.Relocs, obj.Reloc{Kind: obj.RelocHi16, Section: obj.SecText, Offset: start + uint64(i)*4, Sym: "table"})
			}
			if f.name == "main" && in.Op == isa.OpOri {
				o.Relocs = append(o.Relocs, obj.Reloc{Kind: obj.RelocLo16, Section: obj.SecText, Offset: start + uint64(i)*4, Sym: "table"})
			}
			text = isa.EncodeTo(text, in)
		}
		o.Symbols = append(o.Symbols, obj.Symbol{
			Name: f.name, Kind: obj.SymFunc, Section: obj.SecText,
			Offset: start, Size: uint64(len(text)) - start, Align: 4,
		})
	}
	o.Text = text
	// table: two 8-byte function addresses, patched by abs64 relocs.
	o.Data = make([]byte, 16)
	o.Symbols = append(o.Symbols, obj.Symbol{
		Name: "table", Kind: obj.SymData, Section: obj.SecData, Offset: 0, Size: 16, Align: 8,
	})
	o.Relocs = append(o.Relocs,
		obj.Reloc{Kind: obj.RelocAbs64, Section: obj.SecData, Offset: 0, Sym: "shallow"},
		obj.Reloc{Kind: obj.RelocAbs64, Section: obj.SecData, Offset: 8, Sym: "deep"},
	)
	exe, err := linker.Link([]*obj.Object{o}, linker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

// TestFootprintJalrThroughTable: the dataflow engine must resolve an
// indirect call through a constant table of function addresses to the exact
// target set — both callees become calls, the footprint stays exact, and
// MaxDepth covers the deeper callee.
func TestFootprintJalrThroughTable(t *testing.T) {
	exe := buildJalrTable(t)
	info, err := dataflow.Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	main := info.Funcs[exe.Symbols["main"]]
	if len(main.UnresolvedJalr) != 0 {
		t.Fatalf("table jalr left unresolved at %x", main.UnresolvedJalr)
	}
	targets := map[uint64]bool{}
	for _, c := range main.Calls {
		if c.Indirect {
			targets[c.Target] = true
		}
	}
	for _, name := range []string{"shallow", "deep"} {
		if !targets[exe.Symbols[name]] {
			t.Errorf("indirect call set missing %s; got %v", name, targets)
		}
	}
	fp, err := analysis.ExtractStackFootprint(exe, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Approx {
		t.Errorf("resolved table jalr should stay exact; reasons: %v", fp.ApproxReasons)
	}
	if fp.MaxDepth < 256 {
		t.Errorf("MaxDepth %d does not cover deep's 256-byte frame", fp.MaxDepth)
	}
	checkSound(t, fp, deepestWrite(t, exe))
}

// TestFootprintUnresolvableJalr: an indirect call whose target register
// comes from an opaque runtime value must be reported as unresolved and
// force the footprint approximate with an honest reason.
func TestFootprintUnresolvableJalr(t *testing.T) {
	code := []isa.Inst{
		{Op: isa.OpAddi, Rd: isa.A0, Rs1: isa.R0, Imm: isa.SysCycles},
		{Op: isa.OpSys, Rd: isa.R0, Rs1: isa.A0}, // RV ← cycles: opaque
		{Op: isa.OpBeq, Rd: isa.R0, Rs1: isa.RV, Rs2: isa.R0, Imm: 1},
		{Op: isa.OpJalr, Rd: isa.RA, Rs1: isa.RV}, // target unknowable
		{Op: isa.OpJalr, Rd: isa.R0, Rs1: isa.RA}, // return to crt0
	}
	o := &obj.Object{Name: "badjalr"}
	var text []byte
	for _, in := range code {
		text = isa.EncodeTo(text, in)
	}
	o.Text = text
	o.Symbols = []obj.Symbol{{Name: "main", Kind: obj.SymFunc, Section: obj.SecText, Offset: 0, Size: uint64(len(text)), Align: 4}}
	exe, err := linker.Link([]*obj.Object{o}, linker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := dataflow.Analyze(exe)
	if err != nil {
		t.Fatal(err)
	}
	main := info.Funcs[exe.Symbols["main"]]
	if len(main.UnresolvedJalr) == 0 {
		t.Fatal("opaque jalr target was not reported unresolved")
	}
	if !info.AllReachable {
		t.Error("an unresolved jalr must make reachability conservative")
	}
	fp, err := analysis.ExtractStackFootprint(exe, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Approx {
		t.Fatal("unresolved indirect call classified exact")
	}
	wantReason(t, fp, "indirect")
}
