package analysis

import (
	"fmt"
	"sort"

	"biaslab/internal/analysis/dataflow"
	"biaslab/internal/ir"
	"biaslab/internal/linker"
	"biaslab/internal/machine"
)

// Multi-channel layout-bias prediction. The env oracle (oracle.go) covers the
// one channel that moves only the stack. The remaining channels — inter-object
// text padding, an ASLR-style image-base displacement, and link order — move
// the *code* (and with it the globals, since the data segment is laid out
// right after the text). For those, the comparator below decides, for a pair
// of linked layouts, one of three verdicts:
//
//   - EQUAL: the layouts are proven to measure identical cycles. The proof is
//     a behavioural symmetry argument, structure by structure:
//
//     gshare   dirIndex = (pc>>2 ^ hist) & (2^h-1). Adding c to an h-bit
//              index is the identity when c ≡ 0 (mod 2^h) and exactly
//              XOR-with-2^(h-1) when c ≡ 2^(h-1): x+2^(h-1) mod 2^h flips
//              bit h-1 whether or not it carries. A *uniform* shift δ with
//              δ/4 ≡ 0 or 2^(h-1) (mod 2^h) therefore relabels the direction
//              table by a constant XOR, and a freshly reset table is
//              invariant under relabelling. Per-object shifts must all be
//              ≡ 0 (mod 2^(h+2)) — distinct XOR constants per object would
//              change cross-object collisions.
//     BTB      index = pc>>2 mod entries, tag = the remaining bits, and
//              stored targets move with the text, so ANY uniform shift
//              (multiple of 4) preserves hit/miss behaviour exactly;
//              per-object shifts must be ≡ 0 (mod 4·entries) to keep the
//              collision structure.
//     caches   If every region's shift is a multiple of the structure's way
//              span (sets × line), every address keeps its set and the
//              per-set reference string is relabelled injectively: behaviour
//              identical even under pressure. Otherwise the compulsory-miss
//              regime must hold (no set's conservative occupancy exceeds its
//              associativity) and shifts must preserve the line/page
//              partition (multiples of the granule, with no granule shared
//              between regions that shift by different amounts).
//     penalties MisalignedEntry keys on target%16, TakenBranch and the rest
//              on layout-independent event counts; shifts that are multiples
//              of 16 (and of the fetch-block size, which gates I-side
//              probes) preserve them.
//
//   - TRANSITION: the layouts are predicted to measure differently: some
//     must-execute taken transfer's target alignment flips mod 16 on a
//     machine that charges MisalignedEntry, so every run pays a different
//     penalty sum. This is definite up to exact cancellation by an opposing
//     change in another structure — possible in principle, not observed in
//     practice — so plans built from it stay honest by verifying plateaus
//     empirically (the adaptive sweeps) before interpolating.
//
//   - UNKNOWN: neither proof applies. A plan treats the pair as a potential
//     boundary and loses its exactness claim.

// ChannelLayout bundles one linked layout with its static analyses.
type ChannelLayout struct {
	// Value is the channel coordinate that produced the layout (pad bytes,
	// text base, or a link-permutation index).
	Value uint64
	Exe   *linker.Executable
	// Info may be nil when the dataflow engine failed; the comparator then
	// degrades (no reachability restriction, no transition proofs).
	Info *dataflow.Info
	// Foot may be nil; pressure checks then fail conservatively.
	Foot *StackFootprint
}

// NewChannelLayout runs the dataflow engine and footprint extractor over one
// linked layout. prog may be nil (see ExtractStackFootprint).
func NewChannelLayout(value uint64, exe *linker.Executable, prog *ir.Program) (*ChannelLayout, error) {
	foot, err := ExtractStackFootprint(exe, prog)
	if err != nil {
		return nil, err
	}
	info, err := dataflow.Analyze(exe)
	if err != nil {
		info = nil
	}
	return &ChannelLayout{Value: value, Exe: exe, Info: info, Foot: foot}, nil
}

// Verdict is the comparator's three-valued answer for a pair of layouts.
type Verdict uint8

const (
	VerdictUnknown Verdict = iota
	VerdictEqual
	VerdictTransition
)

func (v Verdict) String() string {
	switch v {
	case VerdictEqual:
		return "EQUAL"
	case VerdictTransition:
		return "TRANSITION"
	}
	return "UNKNOWN"
}

// ChannelPair is the verdict for one ordered pair of grid points.
type ChannelPair struct {
	I, J    int // indices into ChannelConflictMap.Values, I < J
	Verdict Verdict
	Reason  string
}

// ChannelConflictMap is the multi-channel analogue of ConflictMap: pairwise
// verdicts over a grid of channel values for one (benchmark, machine) pair.
type ChannelConflictMap struct {
	Bench   string
	Machine string
	// Channel names the perturbation: "pad", "base", or "link".
	Channel string
	Values  []uint64
	// Pairs holds a verdict for every i < j pair of grid points.
	Pairs []ChannelPair
	// Approx is set when any layout's footprint was approximate or its
	// dataflow analysis failed; ApproxReasons says why (deduped, sorted).
	Approx        bool
	ApproxReasons []string
}

// Pair returns the verdict for grid points i < j, or nil.
func (cm *ChannelConflictMap) Pair(i, j int) *ChannelPair {
	for k := range cm.Pairs {
		if cm.Pairs[k].I == i && cm.Pairs[k].J == j {
			return &cm.Pairs[k]
		}
	}
	return nil
}

// BuildChannelConflictMap compares every pair of layouts under cfg. sp is the
// initial stack pointer the measurements will use (layout-independent); it
// locates the stack for the pressure checks.
func BuildChannelConflictMap(benchName, machineName, channel string, cfg machine.Config, sp uint64, layouts []*ChannelLayout) *ChannelConflictMap {
	cm := &ChannelConflictMap{Bench: benchName, Machine: machineName, Channel: channel}
	seen := map[string]bool{}
	for _, l := range layouts {
		cm.Values = append(cm.Values, l.Value)
		var reasons []string
		if l.Foot == nil {
			reasons = append(reasons, "no stack footprint")
		} else if l.Foot.Approx {
			reasons = l.Foot.ApproxReasons
		}
		if l.Info == nil {
			reasons = append(reasons, "dataflow analysis unavailable")
		}
		for _, r := range reasons {
			if !seen[r] {
				seen[r] = true
				cm.Approx = true
				cm.ApproxReasons = append(cm.ApproxReasons, r)
			}
		}
	}
	sort.Strings(cm.ApproxReasons)
	for i := 0; i < len(layouts); i++ {
		for j := i + 1; j < len(layouts); j++ {
			v, reason := compareLayouts(cfg, sp, layouts[i], layouts[j])
			cm.Pairs = append(cm.Pairs, ChannelPair{I: i, J: j, Verdict: v, Reason: reason})
		}
	}
	return cm
}

// compareLayouts decides the verdict for one pair of layouts.
func compareLayouts(cfg machine.Config, sp uint64, a, b *ChannelLayout) (Verdict, string) {
	deltas, uniform, err := computeDeltas(a.Exe, b.Exe)
	if err != "" {
		return VerdictUnknown, err
	}
	if why := equalProof(cfg, sp, a, b, deltas, uniform); why == "" {
		if uniform && deltas.funcs[0] == 0 && deltas.data == 0 && deltas.bss == 0 {
			return VerdictEqual, "identical layout"
		}
		return VerdictEqual, equalReason(deltas, uniform)
	} else if r := transitionProof(cfg, a, deltas); r != "" {
		return VerdictTransition, r
	} else {
		return VerdictUnknown, why
	}
}

// layoutDeltas holds the per-function and per-segment address shifts from
// layout A to layout B.
type layoutDeltas struct {
	funcs     []int64 // parallel to Exe.Funcs
	data, bss int64
}

func computeDeltas(a, b *linker.Executable) (layoutDeltas, bool, string) {
	var d layoutDeltas
	if len(a.Funcs) != len(b.Funcs) {
		return d, false, "different function sets"
	}
	uniform := true
	for i := range a.Funcs {
		fa, fb := &a.Funcs[i], &b.Funcs[i]
		if fa.Name != fb.Name || fa.Size != fb.Size {
			return d, false, fmt.Sprintf("function %s differs between layouts", fa.Name)
		}
		d.funcs = append(d.funcs, int64(fb.Addr)-int64(fa.Addr))
		if d.funcs[i] != d.funcs[0] {
			uniform = false
		}
	}
	if len(d.funcs) == 0 {
		return d, false, "no functions"
	}
	d.data = int64(b.DataBase) - int64(a.DataBase)
	d.bss = int64(b.BSSBase) - int64(a.BSSBase)
	return d, uniform, ""
}

func equalReason(d layoutDeltas, uniform bool) string {
	if uniform {
		return fmt.Sprintf("uniform text shift %+d preserves every structure's behaviour", d.funcs[0])
	}
	return "per-object shifts preserve every structure's behaviour"
}

// equalProof returns "" when the layouts are provably behaviourally equal,
// else the first obstruction.
func equalProof(cfg machine.Config, sp uint64, a, b *ChannelLayout, d layoutDeltas, uniform bool) string {
	hist := cfg.Predictor.HistoryBits
	histSpan := int64(4) << hist
	btbSpan := int64(4) * int64(cfg.Predictor.BTBEntries)

	// Branch predictors.
	if uniform {
		delta := d.funcs[0]
		if delta%4 != 0 {
			return fmt.Sprintf("text shift %+d not instruction-aligned", delta)
		}
		c := (delta >> 2) & (int64(1)<<hist - 1)
		if c != 0 && c != int64(1)<<(hist-1) {
			return fmt.Sprintf("uniform shift %+d is not a gshare index relabelling (need δ ≡ 0 or %d mod %d)", delta, histSpan/2, histSpan)
		}
	} else {
		for i, delta := range d.funcs {
			if delta%histSpan != 0 || delta%btbSpan != 0 {
				return fmt.Sprintf("shift %+d of %s not a multiple of the branch-structure period %d",
					delta, a.Exe.Funcs[i].Name, lcm64(histSpan, btbSpan))
			}
		}
	}

	// Alignment-sensitive granules on the text side: the misaligned-entry
	// check (mod 16), the fetch-block gate, cache lines, and pages.
	granules := []int64{16, int64(cfg.FetchBlockBytes), int64(cfg.L1I.LineSize), int64(cfg.PageSize)}
	for _, g := range granules {
		if g <= 0 {
			continue
		}
		for i, delta := range d.funcs {
			if delta%g != 0 {
				return fmt.Sprintf("shift %+d of %s breaks the %d-byte text partition", delta, a.Exe.Funcs[i].Name, g)
			}
		}
		if !uniform {
			if why := crossShiftSharing(a, b, d, g); why != "" {
				return why
			}
		}
	}
	for _, g := range []int64{int64(cfg.L1D.LineSize), int64(cfg.L2.LineSize), int64(cfg.PageSize)} {
		if g > 0 && (d.data%g != 0 || d.bss%g != 0) {
			return fmt.Sprintf("data shift %+d / bss shift %+d breaks the %d-byte partition", d.data, d.bss, g)
		}
	}

	// Cache and TLB structures: exact set preservation or compulsory-miss
	// regime (pressure-free on both layouts).
	l1i, l1d, l2 := cfg.L1I.Geometry(), cfg.L1D.Geometry(), cfg.L2.Geometry()
	itlb := machine.TLBGeom(cfg.ITLBEntries, cfg.PageSize)
	dtlb := machine.TLBGeom(cfg.DTLBEntries, cfg.PageSize)
	textDeltas := d.funcs
	dataDeltas := []int64{d.data, d.bss}
	structs := []struct {
		name   string
		span   int64
		deltas [][]int64
	}{
		{"L1I", int64(l1i.Sets) * int64(l1i.LineSize), [][]int64{textDeltas}},
		{"ITLB", int64(itlb.Sets) * int64(itlb.PageSize), [][]int64{textDeltas}},
		{"L1D", int64(l1d.Sets) * int64(l1d.LineSize), [][]int64{dataDeltas}},
		{"DTLB", int64(dtlb.Sets) * int64(dtlb.PageSize), [][]int64{dataDeltas}},
		{"L2", int64(l2.Sets) * int64(l2.LineSize), [][]int64{textDeltas, dataDeltas}},
	}
	for _, s := range structs {
		preserved := true
		for _, ds := range s.deltas {
			for _, delta := range ds {
				if delta%s.span != 0 {
					preserved = false
				}
			}
		}
		if preserved {
			continue
		}
		// Set mappings move: the claim must fall back to compulsory misses,
		// which requires the structure pressure-free under both layouts.
		for _, l := range []*ChannelLayout{a, b} {
			over, why := structPressure(cfg, sp, l, s.name)
			if why != "" {
				return why
			}
			if over {
				return fmt.Sprintf("%s sets shift by a non-span multiple under set pressure", s.name)
			}
		}
	}
	return ""
}

// crossShiftSharing reports an obstruction when two functions that shift by
// different amounts share a g-byte granule in either layout — the granule
// partition of the fetched text would not be isomorphic. Only functions that
// can execute matter; unreachable code is never fetched.
func crossShiftSharing(a, b *ChannelLayout, d layoutDeltas, g int64) string {
	check := func(exe *linker.Executable, which string) string {
		type span struct {
			lo, hi int64 // byte range, half open
			delta  int64
			name   string
		}
		var spans []span
		for i := range exe.Funcs {
			f := &exe.Funcs[i]
			if f.Size == 0 || !reachableFunc(a, f.Name) {
				continue
			}
			spans = append(spans, span{int64(f.Addr), int64(f.Addr + f.Size), d.funcs[i], f.Name})
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		for i := 1; i < len(spans); i++ {
			prev, cur := spans[i-1], spans[i]
			if prev.delta != cur.delta && cur.lo/g == (prev.hi-1)/g {
				return fmt.Sprintf("%s and %s share a %d-byte granule in the %s layout but shift differently",
					prev.name, cur.name, g, which)
			}
		}
		return ""
	}
	if why := check(a.Exe, "first"); why != "" {
		return why
	}
	return check(b.Exe, "second")
}

// reachableFunc reports whether the named function can execute, per layout
// a's dataflow reachability; with no analysis everything is reachable.
func reachableFunc(a *ChannelLayout, name string) bool {
	if a.Info == nil || a.Info.AllReachable {
		return true
	}
	addr, ok := a.Exe.Symbols[name]
	if !ok {
		return true
	}
	return a.Info.Reachable[addr]
}

// structPressure computes the conservative per-set occupancy of one
// structure under one layout and reports whether any set exceeds its
// associativity. Globals are counted wholesale and the stack footprint at sp
// supplies the stack spans, exactly as the env oracle does.
func structPressure(cfg machine.Config, sp uint64, l *ChannelLayout, name string) (bool, string) {
	if l.Foot == nil {
		return false, "no stack footprint for the pressure check"
	}
	stackAt := func(unit int64) []unitSpan {
		spans := make([]unitSpan, 0, len(l.Foot.Intervals))
		for _, iv := range l.Foot.Intervals {
			spans = append(spans, unitSpan{first: (int64(sp) + iv.Lo) / unit, last: (int64(sp) + iv.Hi - 1) / unit})
		}
		return spans
	}
	var globals []Interval
	if len(l.Exe.Data) > 0 {
		globals = append(globals, Interval{Lo: int64(l.Exe.DataBase), Hi: int64(l.Exe.DataBase) + int64(len(l.Exe.Data))})
	}
	if l.Exe.BSSSize > 0 {
		globals = append(globals, Interval{Lo: int64(l.Exe.BSSBase), Hi: int64(l.Exe.BSSBase) + int64(l.Exe.BSSSize)})
	}
	text := []Interval{{Lo: int64(l.Exe.TextBase), Hi: int64(l.Exe.TextBase) + int64(len(l.Exe.Text))}}

	over := func(occ []int16, ways int) bool {
		for _, c := range occ {
			if int(c) > ways {
				return true
			}
		}
		return false
	}
	switch name {
	case "L1I":
		g := cfg.L1I.Geometry()
		return over(occupancy(g.Sets, int64(g.LineSize), nil, text), g.Ways), ""
	case "ITLB":
		g := machine.TLBGeom(cfg.ITLBEntries, cfg.PageSize)
		return over(occupancy(g.Sets, int64(g.PageSize), nil, text), g.Ways), ""
	case "L1D":
		g := cfg.L1D.Geometry()
		return over(occupancy(g.Sets, int64(g.LineSize), stackAt(int64(g.LineSize)), globals), g.Ways), ""
	case "DTLB":
		g := machine.TLBGeom(cfg.DTLBEntries, cfg.PageSize)
		return over(occupancy(g.Sets, int64(g.PageSize), stackAt(int64(g.PageSize)), globals), g.Ways), ""
	case "L2":
		g := cfg.L2.Geometry()
		return over(occupancy(g.Sets, int64(g.LineSize), stackAt(int64(g.LineSize)), globals, text), g.Ways), ""
	}
	return false, fmt.Sprintf("unknown structure %q", name)
}

// transitionProof returns a non-empty reason when the pair provably measures
// differently: a must-execute taken transfer's target alignment flips mod 16
// on a machine charging MisalignedEntry. Must-execute means the site
// postdominates its function's entry AND the function executes on every run,
// so the penalty difference lands on every measurement.
func transitionProof(cfg machine.Config, a *ChannelLayout, d layoutDeltas) string {
	if cfg.Penalties.MisalignedEntry == 0 || a.Info == nil {
		return ""
	}
	deltaAt := func(addr uint64) (int64, bool) {
		f := a.Exe.FuncAt(addr)
		if f == nil {
			return 0, false
		}
		for i := range a.Exe.Funcs {
			if a.Exe.Funcs[i].Addr == f.Addr {
				return d.funcs[i], true
			}
		}
		return 0, false
	}
	flip := func(target uint64, delta int64) bool {
		return (target%16 == 0) != (uint64(int64(target)+delta)%16 == 0)
	}
	for addr, must := range a.Info.MustExec {
		if !must {
			continue
		}
		fi := a.Info.Funcs[addr]
		if fi == nil {
			continue
		}
		for _, t := range fi.Transfers {
			if !t.MustExec {
				continue
			}
			if delta, ok := deltaAt(t.Target); ok && flip(t.Target, delta) {
				return fmt.Sprintf("must-execute transfer at %#x in %s: target %#x alignment flips mod 16", t.PC, fi.Name, t.Target)
			}
		}
		// Returns from must-execute callees land at the call site + 4; that
		// target shifts with the *caller* and is charged like any taken
		// transfer.
		for _, c := range fi.Calls {
			if !c.MustExec {
				continue
			}
			if delta, ok := deltaAt(c.PC); ok && flip(c.PC+4, delta) {
				return fmt.Sprintf("must-execute return target %#x in %s: alignment flips mod 16", c.PC+4, fi.Name)
			}
		}
	}
	return ""
}

func lcm64(a, b int64) int64 {
	g, x := a, b
	for x != 0 {
		g, x = x, g%x
	}
	return a / g * b
}
