package analysis

import (
	"fmt"
	"sort"

	"biaslab/internal/analysis/dataflow"
	"biaslab/internal/ir"
	"biaslab/internal/isa"
	"biaslab/internal/linker"
)

// Stack-footprint extraction: stage 2's first half. Per-function frame
// intervals come from the interprocedural dataflow engine when it can prove
// them exact — value-range interpretation bounds every SP-relative access,
// resolves jalr targets through data tables, and composes the bytes a callee
// touches through a pointer into the caller's frame. Functions the engine
// cannot model exactly fall back to the original linear text scan, which
// over-approximates address-taken slots from IR slot sizes and flags the
// footprint approximate. A walk of the resolved call graph then turns
// per-function intervals into whole-program displacements below the initial
// stack pointer; recursive components descend to the engine's proven frame
// bound where one exists instead of flagging the footprint approximate.

// Interval is a half-open byte range [Lo, Hi).
type Interval struct {
	Lo, Hi int64
}

// StackFootprint is the set of stack bytes a program can touch, as
// displacements relative to the initial stack pointer (all negative: the
// stack grows down and arguments/returns travel in registers).
type StackFootprint struct {
	// Intervals is sorted by Lo, non-overlapping, non-adjacent.
	Intervals []Interval
	// MaxDepth is the deepest byte below the initial SP (-min Lo).
	MaxDepth int64
	// Approx is set when the extractor met a construct it cannot model
	// exactly: recursion with no provable depth bound, unresolved indirect
	// calls, or pointer-typed slot addresses whose extent had to be taken
	// from IR slot sizes. Predictions from an approximate footprint may
	// over-count touched lines.
	Approx bool
	// ApproxReasons says why, one entry per construct class encountered,
	// deduplicated and sorted.
	ApproxReasons []string
}

// funcFrame is the per-function result of the fallback text scan.
type funcFrame struct {
	name    string
	addr    uint64
	frame   int64      // prologue allocation, 0 for frameless functions
	touched []Interval // frame offsets, relative to post-prologue SP
	calls   []uint64   // absolute jal targets
	approx  []string
}

// ExtractStackFootprint computes the stack footprint of a linked executable.
// prog, when non-nil, supplies IR slot sizes for address-taken frame slots in
// the fallback path (the one case the text does not spell out the extent);
// nil degrades to a conservative estimate and an Approx flag.
func ExtractStackFootprint(exe *linker.Executable, prog *ir.Program) (*StackFootprint, error) {
	if len(exe.Funcs) == 0 {
		return nil, fmt.Errorf("analysis: executable has no function symbols")
	}
	frames := map[uint64]*funcFrame{}
	for i := range exe.Funcs {
		fr := &exe.Funcs[i]
		ff, err := scanFunc(exe, fr, prog)
		if err != nil {
			return nil, err
		}
		frames[fr.Addr] = ff
	}

	entry := exe.Entry
	if _, ok := frames[entry]; !ok {
		return nil, fmt.Errorf("analysis: entry %#x is not a known function", entry)
	}

	// The dataflow engine is strictly an upgrade: any function it proves
	// exact uses its intervals, resolved calls, and recursion bounds; any it
	// cannot, and the whole program if it errors out, keep the scan results.
	df, dfErr := dataflow.Analyze(exe)
	if dfErr != nil {
		df = nil
	}

	fp := &StackFootprint{}
	seen := map[depthKey]bool{}
	onPath := map[uint64]bool{}
	sccLive := map[int]int64{}
	var walk func(addr uint64, depth int64)
	walk = func(addr uint64, depth int64) {
		ff, ok := frames[addr]
		if !ok {
			// jal into the middle of a function cannot come out of the
			// code generator; treat as approximation rather than failing.
			fp.note("call into unknown text at %#x", addr)
			return
		}
		key := depthKey{addr, depth}
		if seen[key] {
			return
		}
		if len(seen) > maxDepthPairs {
			fp.note("call graph exceeds %d (function, depth) pairs", maxDepthPairs)
			return
		}

		// Recursion control. A recursive SCC with a proven frame bound
		// descends until that many component frames are live on the path and
		// then stops: the bound says no real execution stacks more, so the
		// cut loses nothing and the footprint stays exact. Everything else
		// keeps the legacy cycle check.
		var dfi *dataflow.FuncInfo
		bounded := false
		var scc int
		if df != nil {
			dfi = df.Funcs[addr]
			scc = df.SCCID[addr]
			if df.Recursive[scc] {
				if bound, okB := df.Bounds[scc]; okB {
					if sccLive[scc] >= bound {
						return
					}
					bounded = true
				}
			}
		}
		if bounded {
			sccLive[scc]++
			defer func() { sccLive[scc]-- }()
		} else {
			if onPath[addr] {
				fp.note("recursion through %s", ff.name)
				return
			}
			onPath[addr] = true
			defer delete(onPath, addr)
		}
		seen[key] = true

		base := depth + ff.frame // total bytes below initial SP at f's body
		if dfi != nil && dfi.Exact {
			for _, iv := range dfi.Touched {
				fp.Intervals = append(fp.Intervals, Interval{Lo: iv.Lo - base, Hi: iv.Hi - base})
			}
			for range dfi.UnresolvedJalr {
				fp.note("%s: indirect call (jalr)", ff.name)
			}
			for _, c := range dfi.Calls {
				composePointerArgs(fp, df, ff, prog, &c, base)
				walk(c.Target, base)
			}
			return
		}
		for _, iv := range ff.touched {
			fp.Intervals = append(fp.Intervals, Interval{Lo: iv.Lo - base, Hi: iv.Hi - base})
		}
		for _, reason := range ff.approx {
			fp.note("%s: %s", ff.name, reason)
		}
		for _, callee := range ff.calls {
			walk(callee, base)
		}
	}
	walk(entry, 0)

	fp.Intervals = mergeIntervals(fp.Intervals)
	for _, iv := range fp.Intervals {
		if iv.Hi > 0 {
			return nil, fmt.Errorf("analysis: stack access above initial SP at [%d,%d)", iv.Lo, iv.Hi)
		}
		if -iv.Lo > fp.MaxDepth {
			fp.MaxDepth = -iv.Lo
		}
	}
	sort.Strings(fp.ApproxReasons)
	return fp, nil
}

// composePointerArgs folds a callee's pointer-relative footprint into the
// caller's frame for every argument that is a pointer into it. The callee's
// ParamTouched intervals are relative to the passed pointer; shifting by the
// pointer's frame offset lands them in the caller's frame. A full-span marker
// means the callee's arithmetic on the pointer was unbounded, so the interval
// is clipped to the pointed-to slot's extent (from the IR, approximate when
// the function has several slots) — the same slot axiom the legacy scan used.
func composePointerArgs(fp *StackFootprint, df *dataflow.Info, ff *funcFrame, prog *ir.Program, c *dataflow.Call, base int64) {
	callee := df.Funcs[c.Target]
	if callee == nil {
		return
	}
	for j, a := range c.Args {
		if a.Kind != dataflow.ArgSP {
			continue
		}
		frameOff := a.SPOff + ff.frame // offset of the pointer in caller's frame
		for _, iv := range callee.ParamTouched[j] {
			lo, hi := iv.Lo, iv.Hi
			if hi-lo >= dataflow.MaxParamSpan {
				ext, exact := slotExtent(prog, ff.name, ff.frame, frameOff)
				lo, hi = 0, ext
				if !exact {
					fp.note("%s: address-taken frame slot at offset %d with unknown extent", ff.name, frameOff)
				}
			}
			alo, ahi := frameOff+lo, frameOff+hi
			if alo < 0 {
				alo = 0
			}
			if ff.frame > 0 && ahi > ff.frame {
				ahi = ff.frame
			}
			if ahi > alo {
				fp.Intervals = append(fp.Intervals, Interval{Lo: alo - base, Hi: ahi - base})
			}
		}
	}
}

type depthKey struct {
	addr  uint64
	depth int64
}

// maxDepthPairs bounds the call-graph walk; the benchmark suite needs a few
// dozen pairs, so hitting this means something degenerate.
const maxDepthPairs = 4096

// note records an approximation reason once; repeats at other call sites or
// depths add nothing.
func (fp *StackFootprint) note(format string, args ...any) {
	fp.Approx = true
	s := fmt.Sprintf(format, args...)
	for _, r := range fp.ApproxReasons {
		if r == s {
			return
		}
	}
	fp.ApproxReasons = append(fp.ApproxReasons, s)
}

// scanFunc decodes one function's text and extracts its frame size, touched
// frame offsets, and call targets.
func scanFunc(exe *linker.Executable, fr *linker.FuncRange, prog *ir.Program) (*funcFrame, error) {
	ff := &funcFrame{name: fr.Name, addr: fr.Addr}
	start := fr.Addr - exe.TextBase
	end := start + fr.Size
	if end > uint64(len(exe.Text)) {
		return nil, fmt.Errorf("analysis: function %s extends past text", fr.Name)
	}
	sawPrologue := false
	for off := start; off+uint64(isa.InstSize) <= end; off += uint64(isa.InstSize) {
		in := isa.DecodeBytes(exe.Text[off:])
		switch {
		case in.Op == isa.OpAddi && in.Rd == isa.SP && in.Rs1 == isa.SP:
			if in.Imm < 0 && !sawPrologue {
				ff.frame = int64(-in.Imm)
				sawPrologue = true
			}
			// Positive adjustments are epilogues; nothing to record.

		case in.Op.IsLoad() && in.Rs1 == isa.SP:
			lo := int64(in.Imm)
			ff.touch(lo, lo+int64(in.Op.MemBytes()))

		case in.Op.IsStore() && in.Rs1 == isa.SP:
			lo := int64(in.Imm)
			ff.touch(lo, lo+int64(in.Op.MemBytes()))

		case in.Op == isa.OpAddi && in.Rs1 == isa.SP && in.Rd != isa.SP:
			// Slot-address materialization: the code may touch any part of
			// the slot through the derived pointer. The text does not carry
			// the slot's extent; take it from the IR when available.
			size, exact := slotExtent(prog, fr.Name, ff.frame, int64(in.Imm))
			hi := int64(in.Imm) + size
			if ff.frame > 0 && hi > ff.frame {
				hi = ff.frame
			}
			ff.touch(int64(in.Imm), hi)
			if !exact {
				ff.approx = append(ff.approx, fmt.Sprintf("address-taken frame slot at offset %d with unknown extent", in.Imm))
			}

		case in.Op == isa.OpJal:
			ff.calls = append(ff.calls, uint64(in.Imm)*uint64(isa.InstSize))

		case in.Op == isa.OpJalr && in.Rd != isa.R0:
			ff.approx = append(ff.approx, "indirect call (jalr)")
		}
	}
	return ff, nil
}

func (ff *funcFrame) touch(lo, hi int64) {
	if hi > lo {
		ff.touched = append(ff.touched, Interval{Lo: lo, Hi: hi})
	}
}

// slotExtent returns the byte size of the IR frame slot at the given offset
// of the named function, and whether the answer is exact. The code
// generator's frame layout is internal, so the offset cannot be mapped to a
// specific slot; the largest slot size is a safe over-approximation, exact
// only when the function has exactly one slot.
func slotExtent(prog *ir.Program, name string, frame, off int64) (int64, bool) {
	if prog != nil {
		if fn := prog.FindFunc(name); fn != nil && len(fn.Slots) > 0 {
			var max int64
			for _, s := range fn.Slots {
				if s.Size > max {
					max = s.Size
				}
			}
			return max, len(fn.Slots) == 1
		}
	}
	if frame > off {
		return frame - off, false // whole rest of the frame
	}
	return 8, false
}

// mergeIntervals sorts and coalesces overlapping or adjacent intervals.
func mergeIntervals(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Lo < ivs[j].Lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}
