package analysis_test

import (
	"context"
	"fmt"
	"testing"

	"biaslab/internal/analysis"
	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/core"
	"biaslab/internal/linker"
	"biaslab/internal/loader"
	"biaslab/internal/machine"
)

// TestChannelCrossValidation is the acceptance gate of the channel
// comparator: for two benchmarks × two real machine configs × both code
// channels, every pair of layouts the comparator proves EQUAL must measure
// the same cycle count, and every pair it proves TRANSITION must measure
// different cycle counts — no false verdicts in either direction. The grids
// are chosen so both verdict kinds actually occur (asserted), making the
// test non-vacuous: a comparator that answered UNKNOWN everywhere would
// fail it.
func TestChannelCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 32 full benchmark runs")
	}
	ctx := context.Background()
	const base = linker.DefaultTextBase
	channels := []struct {
		name   string
		values []uint64
		apply  func(core.Setup, uint64) core.Setup
		link   func(v uint64) linker.Options
	}{
		{
			name:   "pad",
			values: []uint64{0, 4, 16384, 32768},
			apply:  func(s core.Setup, v uint64) core.Setup { s.TextPad = v; return s },
			link:   func(v uint64) linker.Options { return linker.Options{PadObjects: v} },
		},
		{
			name:   "base",
			values: []uint64{base, base + 4, base + 8192, base + 16384},
			apply:  func(s core.Setup, v uint64) core.Setup { s.TextBase = v; return s },
			link:   func(v uint64) linker.Options { return linker.Options{TextBase: v} },
		},
	}

	for _, benchName := range []string{"hmmer", "sjeng"} {
		b, ok := bench.ByName(benchName)
		if !ok {
			t.Fatalf("benchmark %s not registered", benchName)
		}
		objs, prog, err := compiler.Compile(b.Sources(bench.SizeTest), compiler.Config{Level: compiler.O2})
		if err != nil {
			t.Fatal(err)
		}
		for _, machineName := range []string{"p4", "core2"} {
			cfg, ok := machine.ConfigByName(machineName)
			if !ok {
				t.Fatalf("machine %s not registered", machineName)
			}
			for _, ch := range channels {
				t.Run(fmt.Sprintf("%s/%s/%s", benchName, machineName, ch.name), func(t *testing.T) {
					layouts := make([]*analysis.ChannelLayout, 0, len(ch.values))
					for _, v := range ch.values {
						exe, err := linker.Link(objs, ch.link(v))
						if err != nil {
							t.Fatal(err)
						}
						cl, err := analysis.NewChannelLayout(v, exe, prog)
						if err != nil {
							t.Fatal(err)
						}
						layouts = append(layouts, cl)
					}
					sp := loader.InitialSP(loader.Options{
						Env:  loader.SyntheticEnv(core.DefaultEnvBytes),
						Args: []string{b.Name},
					})
					cm := analysis.BuildChannelConflictMap(b.Name, machineName, ch.name, cfg, sp, layouts)

					// Measured side: one full simulation per grid value,
					// through the same runner path the sweeps use.
					r := core.NewRunner(bench.SizeTest)
					setup := core.DefaultSetup(machineName)
					cycles := make([]uint64, len(ch.values))
					for i, v := range ch.values {
						m, err := r.Measure(ctx, b, ch.apply(setup, v))
						if err != nil {
							t.Fatal(err)
						}
						cycles[i] = m.Cycles
					}

					nEqual, nTransition := 0, 0
					for _, pr := range cm.Pairs {
						same := cycles[pr.I] == cycles[pr.J]
						switch pr.Verdict {
						case analysis.VerdictEqual:
							nEqual++
							if !same {
								t.Errorf("FALSE EQUAL %d→%d (%s): %d vs %d cycles",
									ch.values[pr.I], ch.values[pr.J], pr.Reason, cycles[pr.I], cycles[pr.J])
							}
						case analysis.VerdictTransition:
							nTransition++
							if same {
								t.Errorf("FALSE TRANSITION %d→%d (%s): both %d cycles",
									ch.values[pr.I], ch.values[pr.J], pr.Reason, cycles[pr.I])
							}
						}
					}
					t.Logf("%d pairs: %d proven equal, %d proven transitions",
						len(cm.Pairs), nEqual, nTransition)
					if nEqual == 0 || nTransition == 0 {
						t.Errorf("grid must exercise both verdict kinds: %d EQUAL, %d TRANSITION", nEqual, nTransition)
					}
				})
			}
		}
	}
}

// TestChannelPlanBoundaries locks the shape NewChannelPlan hands the
// adaptive sweep: consecutive proven-equal pairs merge into one plateau,
// every non-EQUAL consecutive pair opens a new one, and an undecided pair
// demotes the plan to approximate without hiding the boundary.
func TestChannelPlanBoundaries(t *testing.T) {
	b, ok := bench.ByName("hmmer")
	if !ok {
		t.Fatal("hmmer not registered")
	}
	r := core.NewRunner(bench.SizeTest)
	setup := core.DefaultSetup("p4")
	values := []uint64{0, 4, 16384, 32768}
	plan, err := core.PlanPadSweep(r, b, setup, values)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Channel != "pad" {
		t.Errorf("plan.Channel = %q, want pad", plan.Channel)
	}
	if len(plan.Boundaries) == 0 {
		t.Fatal("pad plan for hmmer@p4 predicts no boundaries; the 0→4 pair is a proven transition")
	}
	// Boundary indices must be valid, strictly increasing plateau starts.
	last := 0
	for _, bi := range plan.Boundaries {
		if bi <= last || bi >= len(values) {
			t.Fatalf("malformed boundary index %d in %v", bi, plan.Boundaries)
		}
		last = bi
	}
}
