package analysis_test

import (
	"testing"

	"biaslab/internal/analysis"
	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/linker"
)

func TestLinkOrderMap(t *testing.T) {
	b, _ := bench.ByName("hmmer")
	var srcs []compiler.Source
	for _, s := range b.Sources(bench.SizeTest) {
		srcs = append(srcs, compiler.Source{Name: s.Name, Text: s.Text})
	}
	objs, _, err := compiler.Compile(srcs, compiler.Config{Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := xvalConfigA()

	lm, err := analysis.BuildLinkOrderMap(objs, cfg, linker.Options{}, 720)
	if err != nil {
		t.Fatal(err)
	}
	nPerms := 1
	for i := 2; i <= len(objs); i++ {
		nPerms *= i
	}
	if len(lm.Perms) != nPerms {
		t.Fatalf("enumerated %d permutations, want %d", len(lm.Perms), nPerms)
	}
	if lm.Truncated {
		t.Fatal("unexpected truncation")
	}

	// Baseline must be the identity order, and must match a direct link.
	base := lm.Baseline()
	for i, src := range base.Order {
		if src != i {
			t.Fatalf("baseline order %v is not source order", base.Order)
		}
	}
	exe, err := linker.Link(objs, linker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct := analysis.SignPerm(exe, cfg, base.Order)
	if direct.LayoutSig != base.LayoutSig {
		t.Fatal("baseline signature does not match a direct link of the same order")
	}
	if direct.DataBase != base.DataBase || direct.BSSBase != base.BSSBase {
		t.Fatal("baseline section bases do not match a direct link")
	}

	// Determinism: rebuilding the map yields identical signatures.
	lm2, err := analysis.BuildLinkOrderMap(objs, cfg, linker.Options{}, 720)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lm.Perms {
		if lm.Perms[i].LayoutSig != lm2.Perms[i].LayoutSig {
			t.Fatalf("perm %d signature not deterministic", i)
		}
	}

	// Equal layout signatures must agree on everything the signature is
	// supposed to summarize.
	byClass := map[uint64]analysis.LinkPerm{}
	for _, p := range lm.Perms {
		q, seen := byClass[p.LayoutSig]
		if !seen {
			byClass[p.LayoutSig] = p
			continue
		}
		if len(p.MisalignedFuncs) != len(q.MisalignedFuncs) ||
			p.DataBase != q.DataBase || p.BSSBase != q.BSSBase ||
			p.L1IPressure != q.L1IPressure {
			t.Fatalf("perms %v and %v share a layout signature but differ", p.Order, q.Order)
		}
	}
	if lm.Classes != len(byClass) {
		t.Fatalf("Classes = %d, distinct signatures = %d", lm.Classes, len(byClass))
	}
	if lm.Classes < 2 {
		t.Fatalf("link order never changes the layout (%d class) — permutation analysis would be vacuous", lm.Classes)
	}
	t.Logf("hmmer: %d perms, %d layout classes, baseline misaligned=%d, worst misaligned=%d",
		len(lm.Perms), lm.Classes, len(base.MisalignedFuncs), len(lm.Perms[1].MisalignedFuncs))

	// Object padding is the layout knob the paper turns; with a pad that is
	// not a multiple of the fetch block, permutations must produce at least
	// two different misaligned-entry counts.
	lmPad, err := analysis.BuildLinkOrderMap(objs, cfg, linker.Options{PadObjects: 24}, 720)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]bool{}
	for _, p := range lmPad.Perms {
		counts[len(p.MisalignedFuncs)] = true
	}
	if len(counts) < 2 {
		t.Fatalf("padded links: all %d perms have the same misaligned-entry count", len(lmPad.Perms))
	}
}

func TestLinkOrderMapTruncation(t *testing.T) {
	b, _ := bench.ByName("libquantum")
	var srcs []compiler.Source
	for _, s := range b.Sources(bench.SizeTest) {
		srcs = append(srcs, compiler.Source{Name: s.Name, Text: s.Text})
	}
	objs, _, err := compiler.Compile(srcs, compiler.Config{Level: compiler.O2})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := analysis.BuildLinkOrderMap(objs, xvalConfigB(), linker.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(lm.Perms) != 2 || !lm.Truncated {
		t.Fatalf("cap 2: got %d perms, truncated=%v", len(lm.Perms), lm.Truncated)
	}
}
