// Package analysis is biaslab's static-analysis layer: it reasons about
// programs and their linked images *without running a single simulated
// cycle*.
//
// The package has two stages. Stage 1 (lint.go) is a source-level lint pass
// over checked cmini programs — use-before-initialization, unused variables,
// unreachable code, constant conditions, undefined shifts and constant
// division by zero — surfacing program defects that would otherwise show up
// as mysterious simulation results. Stage 2 (footprint.go, oracle.go) is the
// bias oracle: from a linked executable and a machine configuration it
// extracts the program's stack and global memory footprints, maps them
// through the cache-set geometry as a function of the environment-size stack
// displacement, and predicts the env sizes at which cache-set conflict
// patterns change — the transition points where the paper's measurement bias
// appears and vanishes.
package analysis

import (
	"fmt"
	"sort"

	"biaslab/internal/cmini"
)

// Diagnostic is one positioned finding from the lint pass.
type Diagnostic struct {
	Pos  cmini.Pos
	Code string // stable machine-readable class: "uninit", "unused", ...
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Code, d.Msg)
}

// Diagnostic codes, one per lint class.
const (
	CodeUninit      = "uninit"      // local read before any assignment
	CodeUnused      = "unused"      // local never referenced
	CodeUnreachable = "unreachable" // statement can never execute
	CodeConstCond   = "constcond"   // condition folds to a constant
	CodeUBShift     = "ubshift"     // shift count provably out of [0,64)
	CodeDivZero     = "divzero"     // division/remainder by constant zero
)

// sortDiags orders diagnostics by position then code, so output is stable
// across runs and maps.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Msg < b.Msg
	})
}
