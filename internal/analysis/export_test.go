package analysis

// signPerm is exposed to the package's external tests (they live in
// analysis_test so they can drive the oracle through internal/core).
var SignPerm = signPerm
