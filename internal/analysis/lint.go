package analysis

import (
	"fmt"

	"biaslab/internal/cmini"
)

// Lint runs the stage-1 source lint over a checked program. The unit must
// come from cmini.Check: the pass leans on the symbol links and types sema
// established. Diagnostics are warnings about well-formed-but-suspect code;
// a program can compile and run with any number of them.
//
// The pass is deliberately conservative about control flow. A variable
// assigned on *some* path (or anywhere inside an enclosing loop body, which
// a back edge could have executed) is treated as possibly initialized and
// never reported; only reads with no prior assignment on any path are
// flagged. The goal is zero false positives on real programs — a lint that
// cries wolf on the shipped benchmarks would train users to ignore it.
func Lint(u *cmini.Unit) []Diagnostic {
	var diags []Diagnostic
	for _, f := range u.Files {
		for _, fn := range f.Funcs {
			fl := &funcLinter{diags: &diags}
			fl.run(fn)
		}
	}
	sortDiags(diags)
	return diags
}

// initState is the lattice of the definite-assignment analysis.
type initState uint8

const (
	stNone  initState = iota // no assignment reaches here on any path
	stMaybe                  // assigned on some path (or via a loop back edge)
	stDef                    // assigned on every path
)

type funcLinter struct {
	diags *[]Diagnostic

	// locals tracks every local declaration in order, for the unused check.
	locals []*localInfo
	bySym  map[*cmini.Symbol]*localInfo

	// reportedUninit suppresses repeat uninit reports for the same symbol.
	reportedUninit map[*cmini.Symbol]bool
	// unreachableDepth is non-zero while walking statements already reported
	// unreachable; nested reports would be noise.
	unreachableDepth int
}

type localInfo struct {
	sym  *cmini.Symbol
	decl *cmini.VarDecl
	used bool
	// exempt marks declarations the init analysis does not model: arrays
	// and address-taken variables (writes through pointers are invisible to
	// the walker).
	exempt bool
}

func (fl *funcLinter) report(pos cmini.Pos, code, format string, args ...any) {
	*fl.diags = append(*fl.diags, Diagnostic{Pos: pos, Code: code, Msg: fmt.Sprintf(format, args...)})
}

func (fl *funcLinter) run(fn *cmini.FuncDecl) {
	fl.bySym = map[*cmini.Symbol]*localInfo{}
	fl.reportedUninit = map[*cmini.Symbol]bool{}

	// Pre-pass: address-taken symbols are exempt from init tracking for the
	// whole function body, regardless of where the & appears.
	addrTaken := map[*cmini.Symbol]bool{}
	collectAddrTaken(fn.Body, addrTaken)

	state := map[*cmini.Symbol]initState{}
	fl.walkStmt(fn.Body, state, addrTaken)

	for _, li := range fl.locals {
		if !li.used {
			fl.report(li.decl.P, CodeUnused, "%s declared and not used", li.decl.Name)
		}
	}
}

// walkStmt analyzes one statement under the given definite-assignment state,
// mutating state in place. It returns true when the statement never falls
// through (return, break, continue, or composites all of whose paths
// terminate) — the reachability signal for the unreachable-code check.
func (fl *funcLinter) walkStmt(s cmini.Stmt, state map[*cmini.Symbol]initState, addrTaken map[*cmini.Symbol]bool) bool {
	switch x := s.(type) {
	case *cmini.BlockStmt:
		terminated := false
		for _, sub := range x.List {
			if terminated && fl.unreachableDepth == 0 {
				fl.report(sub.Pos(), CodeUnreachable, "unreachable code")
				// Keep walking so uses in dead code still count for the
				// unused check, but silence nested reports.
				fl.unreachableDepth++
				defer func() { fl.unreachableDepth-- }()
				terminated = false
			}
			if fl.walkStmt(sub, state, addrTaken) {
				terminated = true
			}
		}
		return terminated

	case *cmini.DeclStmt:
		li := &localInfo{sym: x.Decl.Sym, decl: x.Decl}
		li.exempt = x.Decl.IsArray() || addrTaken[x.Decl.Sym]
		fl.locals = append(fl.locals, li)
		if x.Decl.Sym != nil {
			fl.bySym[x.Decl.Sym] = li
		}
		if x.Decl.Init != nil {
			fl.walkExpr(x.Decl.Init, state)
			state[x.Decl.Sym] = stDef
		} else if li.exempt {
			state[x.Decl.Sym] = stDef
		} else {
			state[x.Decl.Sym] = stNone
		}
		return false

	case *cmini.AssignStmt:
		if x.RHS != nil {
			fl.walkExpr(x.RHS, state)
		}
		// Compound assignment and ++/-- read the LHS before writing it.
		reads := x.Op != cmini.Assign
		if id, ok := x.LHS.(*cmini.Ident); ok {
			fl.markUsed(id)
			if reads {
				fl.checkRead(id, state)
			}
			state[id.Sym] = stDef
		} else {
			// *p = ..., a[i] = ...: every subexpression is a read.
			fl.walkExpr(x.LHS, state)
		}
		return false

	case *cmini.ExprStmt:
		fl.walkExpr(x.X, state)
		return false

	case *cmini.IfStmt:
		fl.walkExpr(x.Cond, state)
		if v, ok := fl.constOf(x.Cond); ok {
			fl.report(x.Cond.Pos(), CodeConstCond, "condition is always %s", truth(v))
		}
		thenState := copyState(state)
		thenTerm := fl.walkStmt(x.Then, thenState, addrTaken)
		elseState := copyState(state)
		elseTerm := false
		if x.Else != nil {
			elseTerm = fl.walkStmt(x.Else, elseState, addrTaken)
		}
		mergeBranches(state, thenState, elseState)
		return thenTerm && elseTerm

	case *cmini.WhileStmt:
		fl.walkExpr(x.Cond, state)
		condConst, condKnown := fl.constOf(x.Cond)
		if condKnown && condConst == 0 {
			fl.report(x.Cond.Pos(), CodeConstCond, "loop condition is always false; body never executes")
		}
		fl.walkLoopBody(x.Body, nil, state, addrTaken)
		// while (1) {...} with no break never falls through.
		return condKnown && condConst != 0 && !hasBreak(x.Body)

	case *cmini.ForStmt:
		if x.Init != nil {
			fl.walkStmt(x.Init, state, addrTaken)
		}
		condKnown, condConst := false, int64(0)
		if x.Cond != nil {
			fl.walkExpr(x.Cond, state)
			condConst, condKnown = fl.constOf(x.Cond)
			if condKnown && condConst == 0 {
				fl.report(x.Cond.Pos(), CodeConstCond, "loop condition is always false; body never executes")
			}
		}
		fl.walkLoopBody(x.Body, x.Post, state, addrTaken)
		infinite := x.Cond == nil || (condKnown && condConst != 0)
		return infinite && !hasBreak(x.Body)

	case *cmini.ReturnStmt:
		if x.X != nil {
			fl.walkExpr(x.X, state)
		}
		return true

	case *cmini.BreakStmt, *cmini.ContinueStmt:
		return true
	}
	return false
}

// walkLoopBody analyzes a loop body (and optional post statement) under
// back-edge semantics: anything assigned anywhere in the body could have
// been assigned by a previous iteration, so those symbols are promoted to
// "maybe" before the body is walked. The body may run zero times, so its
// assignments never strengthen the caller's state beyond maybe.
func (fl *funcLinter) walkLoopBody(body, post cmini.Stmt, state map[*cmini.Symbol]initState, addrTaken map[*cmini.Symbol]bool) {
	assigned := map[*cmini.Symbol]bool{}
	collectAssigned(body, assigned)
	if post != nil {
		collectAssigned(post, assigned)
	}
	bodyState := copyState(state)
	for sym := range assigned {
		if bodyState[sym] < stMaybe {
			bodyState[sym] = stMaybe
		}
	}
	fl.walkStmt(body, bodyState, addrTaken)
	if post != nil {
		fl.walkStmt(post, bodyState, addrTaken)
	}
	for sym := range assigned {
		if state[sym] < stMaybe {
			state[sym] = stMaybe
		}
	}
}

// walkExpr records uses, checks reads against the init state, and applies
// the constant-operand checks (division by zero, shift range).
func (fl *funcLinter) walkExpr(e cmini.Expr, state map[*cmini.Symbol]initState) {
	switch x := e.(type) {
	case *cmini.IntLit:
	case *cmini.Ident:
		fl.markUsed(x)
		fl.checkRead(x, state)
	case *cmini.UnaryExpr:
		if x.Op == cmini.Amp {
			// &x is not a read of x; mark the lvalue spine used without an
			// init check, but index expressions inside it are real reads.
			fl.markSpineUsed(x.X, state)
			return
		}
		fl.walkExpr(x.X, state)
	case *cmini.BinaryExpr:
		fl.walkExpr(x.X, state)
		fl.walkExpr(x.Y, state)
		switch x.Op {
		case cmini.Slash, cmini.Percent:
			if v, ok := fl.constOf(x.Y); ok && v == 0 {
				what := "division"
				if x.Op == cmini.Percent {
					what = "remainder"
				}
				fl.report(x.Pos(), CodeDivZero, "%s by constant zero", what)
			}
		case cmini.Shl, cmini.Shr:
			if v, ok := fl.constOf(x.Y); ok && (v < 0 || v > 63) {
				fl.report(x.Pos(), CodeUBShift, "shift count %d out of range [0,64)", v)
			}
		}
	case *cmini.IndexExpr:
		fl.walkExpr(x.X, state)
		fl.walkExpr(x.I, state)
	case *cmini.CallExpr:
		for _, a := range x.Args {
			fl.walkExpr(a, state)
		}
	}
}

func (fl *funcLinter) markUsed(id *cmini.Ident) {
	if li, ok := fl.bySym[id.Sym]; ok {
		li.used = true
	}
}

// checkRead reports a read of a local that no path has assigned.
func (fl *funcLinter) checkRead(id *cmini.Ident, state map[*cmini.Symbol]initState) {
	li, ok := fl.bySym[id.Sym]
	if !ok || li.exempt {
		return // params, globals, untracked
	}
	if state[id.Sym] == stNone && !fl.reportedUninit[id.Sym] {
		fl.reportedUninit[id.Sym] = true
		fl.report(id.Pos(), CodeUninit, "%s read before initialization", id.Name)
	}
}

// constOf folds e when it is a constant expression. Folding errors (overflow,
// UB) do not make the value known; the dedicated checks handle those.
func (fl *funcLinter) constOf(e cmini.Expr) (int64, bool) {
	v, err := cmini.ConstValue(e)
	if err != nil {
		return 0, false
	}
	return v, true
}

func truth(v int64) string {
	if v != 0 {
		return "true"
	}
	return "false"
}

func copyState(state map[*cmini.Symbol]initState) map[*cmini.Symbol]initState {
	out := make(map[*cmini.Symbol]initState, len(state))
	for k, v := range state {
		out[k] = v
	}
	return out
}

// mergeBranches joins the two successor states of an if back into state:
// definite only when definite on both arms, maybe when reached on either.
func mergeBranches(state, thenState, elseState map[*cmini.Symbol]initState) {
	for sym := range thenState {
		state[sym] = joinState(thenState[sym], elseState[sym])
	}
	for sym := range elseState {
		state[sym] = joinState(thenState[sym], elseState[sym])
	}
}

func joinState(a, b initState) initState {
	if a == stDef && b == stDef {
		return stDef
	}
	if a == stNone && b == stNone {
		return stNone
	}
	return stMaybe
}

// markSpineUsed marks the identifier spine of an address-of operand as used
// without read-checking it, while treating index subexpressions as ordinary
// reads under the current state.
func (fl *funcLinter) markSpineUsed(e cmini.Expr, state map[*cmini.Symbol]initState) {
	switch x := e.(type) {
	case *cmini.Ident:
		fl.markUsed(x)
	case *cmini.IndexExpr:
		fl.markSpineUsed(x.X, state)
		fl.walkExpr(x.I, state)
	case *cmini.UnaryExpr:
		fl.markSpineUsed(x.X, state)
	}
}

// collectAddrTaken records every symbol whose address is taken anywhere in s.
func collectAddrTaken(s cmini.Stmt, out map[*cmini.Symbol]bool) {
	walkStmts(s, func(e cmini.Expr) {
		if u, ok := e.(*cmini.UnaryExpr); ok && u.Op == cmini.Amp {
			for spine := u.X; spine != nil; {
				switch x := spine.(type) {
				case *cmini.Ident:
					out[x.Sym] = true
					spine = nil
				case *cmini.IndexExpr:
					spine = x.X
				case *cmini.UnaryExpr:
					spine = x.X
				default:
					spine = nil
				}
			}
		}
	})
}

// collectAssigned records every symbol directly assigned (including ++/--)
// anywhere in s.
func collectAssigned(s cmini.Stmt, out map[*cmini.Symbol]bool) {
	if s == nil {
		return
	}
	switch x := s.(type) {
	case *cmini.BlockStmt:
		for _, sub := range x.List {
			collectAssigned(sub, out)
		}
	case *cmini.DeclStmt:
		if x.Decl.Init != nil {
			out[x.Decl.Sym] = true
		}
	case *cmini.AssignStmt:
		if id, ok := x.LHS.(*cmini.Ident); ok {
			out[id.Sym] = true
		}
	case *cmini.IfStmt:
		collectAssigned(x.Then, out)
		collectAssigned(x.Else, out)
	case *cmini.WhileStmt:
		collectAssigned(x.Body, out)
	case *cmini.ForStmt:
		collectAssigned(x.Init, out)
		collectAssigned(x.Post, out)
		collectAssigned(x.Body, out)
	}
}

// hasBreak reports whether s contains a break that targets the loop s is the
// body of (breaks inside nested loops do not count).
func hasBreak(s cmini.Stmt) bool {
	switch x := s.(type) {
	case *cmini.BreakStmt:
		return true
	case *cmini.BlockStmt:
		for _, sub := range x.List {
			if hasBreak(sub) {
				return true
			}
		}
	case *cmini.IfStmt:
		return hasBreak(x.Then) || (x.Else != nil && hasBreak(x.Else))
	}
	return false
}

// walkStmts applies fn to every expression under s.
func walkStmts(s cmini.Stmt, fn func(cmini.Expr)) {
	if s == nil {
		return
	}
	switch x := s.(type) {
	case *cmini.BlockStmt:
		for _, sub := range x.List {
			walkStmts(sub, fn)
		}
	case *cmini.DeclStmt:
		walkExprs(x.Decl.Init, fn)
	case *cmini.AssignStmt:
		walkExprs(x.LHS, fn)
		walkExprs(x.RHS, fn)
	case *cmini.ExprStmt:
		walkExprs(x.X, fn)
	case *cmini.IfStmt:
		walkExprs(x.Cond, fn)
		walkStmts(x.Then, fn)
		walkStmts(x.Else, fn)
	case *cmini.WhileStmt:
		walkExprs(x.Cond, fn)
		walkStmts(x.Body, fn)
	case *cmini.ForStmt:
		walkStmts(x.Init, fn)
		walkExprs(x.Cond, fn)
		walkStmts(x.Post, fn)
		walkStmts(x.Body, fn)
	case *cmini.ReturnStmt:
		walkExprs(x.X, fn)
	}
}

func walkExprs(e cmini.Expr, fn func(cmini.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *cmini.UnaryExpr:
		walkExprs(x.X, fn)
	case *cmini.BinaryExpr:
		walkExprs(x.X, fn)
		walkExprs(x.Y, fn)
	case *cmini.IndexExpr:
		walkExprs(x.X, fn)
		walkExprs(x.I, fn)
	case *cmini.CallExpr:
		for _, a := range x.Args {
			walkExprs(a, fn)
		}
	}
}
