package dataflow

import (
	"sort"

	"biaslab/internal/linker"
)

// resolveJalr validates resolved call targets against the function table.
// A call whose target is not a known function entry (decode garbage, or a
// jalr that resolved to a mid-function or data address) is demoted to an
// unresolved site so reachability stays conservative.
func resolveJalr(exe *linker.Executable, info *Info) {
	_ = exe
	for _, fi := range info.Funcs {
		kept := fi.Calls[:0]
		for _, c := range fi.Calls {
			if _, ok := info.Funcs[c.Target]; ok {
				kept = append(kept, c)
				continue
			}
			fi.UnresolvedJalr = append(fi.UnresolvedJalr, c.PC)
			for _, a := range c.Args {
				if a.Kind == ArgSP {
					e := "frame pointer passed at indirect call with invalid target"
					if !containsStr(fi.escapes, e) {
						fi.escapes = append(fi.escapes, e)
					}
				} else if a.Kind == ArgParam && a.Param < numArgRegs {
					fi.paramEsc[a.Param] = true
				}
			}
		}
		fi.Calls = kept
		fi.UnresolvedJalr = dedupePCs(fi.UnresolvedJalr)
	}
}

func dedupePCs(pcs []uint64) []uint64 {
	if len(pcs) == 0 {
		return nil
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	out := pcs[:1]
	for _, pc := range pcs[1:] {
		if pc != out[len(out)-1] {
			out = append(out, pc)
		}
	}
	return out
}

// buildCallGraph runs Tarjan's SCC algorithm over the resolved call graph,
// filling SCCID and Recursive.
func buildCallGraph(info *Info) {
	succs := map[uint64][]uint64{}
	selfLoop := map[uint64]bool{}
	for addr, fi := range info.Funcs {
		seen := map[uint64]bool{}
		for _, c := range fi.Calls {
			if c.Target == addr {
				selfLoop[addr] = true
			}
			if !seen[c.Target] {
				seen[c.Target] = true
				succs[addr] = append(succs[addr], c.Target)
			}
		}
		sort.Slice(succs[addr], func(i, j int) bool { return succs[addr][i] < succs[addr][j] })
	}

	// Iterative Tarjan to keep deep call chains off the Go stack.
	index := map[uint64]int{}
	low := map[uint64]int{}
	onStack := map[uint64]bool{}
	var stack []uint64
	next := 0
	sccCount := 0
	sccSize := map[int]int{}

	type frame struct {
		v  uint64
		si int // next successor index to visit
	}
	for _, root := range info.Order {
		if _, ok := index[root]; ok {
			continue
		}
		work := []frame{{v: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.si < len(succs[f.v]) {
				w := succs[f.v][f.si]
				f.si++
				if _, ok := index[w]; !ok {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Done with v: pop, propagate lowlink, maybe emit an SCC.
			v := f.v
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := &work[len(work)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				id := sccCount
				sccCount++
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					info.SCCID[w] = id
					sccSize[id]++
					if w == v {
						break
					}
				}
			}
		}
	}
	for addr := range info.Funcs {
		id := info.SCCID[addr]
		if sccSize[id] > 1 || selfLoop[addr] {
			info.Recursive[id] = true
		}
	}
}

// closeParamTouched propagates pointer-argument footprints across the call
// graph to a fixpoint: if f passes its own parameter p (plus delta) as
// callee argument j, everything the callee touches through argument j is
// touched through f's parameter p.
func closeParamTouched(info *Info) {
	const maxRounds = 32
	for round := 0; ; round++ {
		changed := false
		for _, fi := range info.Funcs {
			for _, c := range fi.Calls {
				callee := info.Funcs[c.Target]
				if callee == nil {
					continue
				}
				for j := 0; j < numArgRegs; j++ {
					a := c.Args[j]
					if a.Kind != ArgParam || len(callee.ParamTouched[j]) == 0 {
						continue
					}
					merged := shiftMerge(fi.ParamTouched[a.Param], callee.ParamTouched[j], a.Delta)
					if !intervalsEqual(merged, fi.ParamTouched[a.Param]) {
						fi.ParamTouched[a.Param] = merged
						changed = true
					}
				}
			}
		}
		if !changed {
			return
		}
		if round >= maxRounds {
			// Non-convergence (recursive pointer walks): widen every still-
			// growing footprint to the full span; callers clip it to the
			// pointed-to slot's real extent.
			for _, fi := range info.Funcs {
				for i := range fi.ParamTouched {
					if len(fi.ParamTouched[i]) > 0 {
						fi.ParamTouched[i] = []Interval{{Lo: 0, Hi: maxParamSpan}}
					}
				}
			}
			return
		}
	}
}

func shiftMerge(dst, src []Interval, delta int64) []Interval {
	out := append([]Interval(nil), dst...)
	for _, iv := range src {
		lo, hi := satAdd(iv.Lo, delta), satAdd(iv.Hi, delta)
		if lo < 0 {
			lo = 0
		}
		if hi > maxParamSpan {
			hi = maxParamSpan
		}
		if hi > lo {
			out = append(out, Interval{Lo: lo, Hi: hi})
		}
	}
	return MergeIntervals(out)
}

func intervalsEqual(a, b []Interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// markReachable walks the resolved call graph from the entry point. Any
// reachable unresolved indirect call forfeits precision: every function
// becomes reachable (AllReachable). It also computes the must-execute
// function set: the entry function plus the closure over call sites that
// postdominate their caller's entry, where the site's target is unique.
func markReachable(exe *linker.Executable, info *Info) {
	entry := exe.Entry
	if _, ok := info.Funcs[entry]; !ok {
		// Entry outside any known function: assume everything runs.
		info.AllReachable = true
		for addr := range info.Funcs {
			info.Reachable[addr] = true
		}
		return
	}
	queue := []uint64{entry}
	info.Reachable[entry] = true
	unresolved := false
	for len(queue) > 0 {
		addr := queue[0]
		queue = queue[1:]
		fi := info.Funcs[addr]
		if len(fi.UnresolvedJalr) > 0 {
			unresolved = true
		}
		for _, c := range fi.Calls {
			if !info.Reachable[c.Target] {
				info.Reachable[c.Target] = true
				queue = append(queue, c.Target)
			}
		}
	}
	if unresolved {
		info.AllReachable = true
		for addr := range info.Funcs {
			info.Reachable[addr] = true
		}
	}

	// Must-execute closure: a callee must execute if some must-execute
	// caller has a must-execute site whose every resolution targets it.
	info.MustExec[entry] = true
	queue = []uint64{entry}
	for len(queue) > 0 {
		addr := queue[0]
		queue = queue[1:]
		fi := info.Funcs[addr]
		bySite := map[uint64][]Call{}
		for _, c := range fi.Calls {
			bySite[c.PC] = append(bySite[c.PC], c)
		}
		for pc, cs := range bySite {
			_ = pc
			if !cs[0].MustExec {
				continue
			}
			uniq := cs[0].Target
			single := true
			for _, c := range cs[1:] {
				if c.Target != uniq {
					single = false
					break
				}
			}
			if single && !info.MustExec[uniq] {
				info.MustExec[uniq] = true
				queue = append(queue, uniq)
			}
		}
	}
}

// maxProvableFrames caps how deep a proved recursion bound may go; beyond
// this the proof is rejected and the SCC stays unbounded (approximate).
const maxProvableFrames = 64

// boundRecursion proves, per recursive SCC, a bound on the number of
// component frames simultaneously live, using a decreasing-parameter
// induction:
//
// Pick an argument position q such that every call edge inside the SCC
// passes the caller's own parameter q decremented by at least d ≥ 1, and
// every edge entering the SCC from outside passes a constant. Then any
// chain of in-SCC frames carries values Vmax, ≤Vmax−d, ≤Vmax−2d, … and the
// chain stops when a site's proven guard fails:
//
//   - range guard: every in-SCC site proves param ≥ L on the call path, so
//     at most floor((Vmax−L)/d)+1 edges execute;
//   - equality guard: every in-SCC site proves param ≠ G, all decrements
//     equal d, and every entry constant V satisfies V ≥ G with d | (V−G),
//     so the value hits G exactly and the chain stops after (Vmax−G)/d
//     edges.
//
// Frames = edges + 1. Strong connectivity makes in-SCC frames on any stack
// contiguous, so the bound is also a simultaneity bound.
func boundRecursion(info *Info) {
	members := map[int][]uint64{}
	for addr, id := range info.SCCID {
		members[id] = append(members[id], addr)
	}
	for id, rec := range info.Recursive {
		if !rec {
			continue
		}
		inSCC := map[uint64]bool{}
		for _, a := range members[id] {
			inSCC[a] = true
		}
		var internal []Call // caller and callee both in the SCC
		var entries []Call  // callee in the SCC, caller outside
		for _, fi := range info.Funcs {
			callerIn := inSCC[fi.Addr]
			for _, c := range fi.Calls {
				if !inSCC[c.Target] {
					continue
				}
				if callerIn {
					internal = append(internal, c)
				} else {
					entries = append(entries, c)
				}
			}
		}
		if len(entries) == 0 {
			continue // dead SCC (or entered only via unresolved calls)
		}
		best := int64(-1)
		for q := 0; q < numArgRegs; q++ {
			if b, ok := proveBound(q, internal, entries); ok && (best < 0 || b < best) {
				best = b
			}
		}
		if best >= 0 && best <= maxProvableFrames {
			info.Bounds[id] = best
		}
	}
}

// proveBound attempts both induction proofs on argument position q,
// returning the smaller frame bound that holds.
func proveBound(q int, internal, entries []Call) (int64, bool) {
	// Every in-SCC edge must pass the caller's own parameter q, strictly
	// decremented.
	d := int64(posInf)  // minimum decrement (for the range proof)
	uniform := int64(0) // common decrement, 0 = not yet set (for the eq proof)
	uniformOK := true
	rangeL := int64(posInf) // weakest proven lower bound across sites
	rangeOK := true
	eqG := int64(negInf) // common excluded value
	eqOK := true
	for _, c := range internal {
		a := c.Args[q]
		if a.Kind != ArgParam || a.Param != q || a.Delta >= 0 {
			return 0, false
		}
		dec := -a.Delta
		if dec < d {
			d = dec
		}
		if uniform == 0 {
			uniform = dec
		} else if uniform != dec {
			uniformOK = false
		}
		if a.ParamLo == negInf {
			rangeOK = false
		} else if a.ParamLo < rangeL {
			rangeL = a.ParamLo
		}
		// For the equality proof every site must exclude a common value.
		if eqOK {
			if eqG == negInf && len(a.ParamNe) > 0 {
				// Candidate set from the first site; later sites must agree
				// on at least one common exclusion. Track via intersection
				// seeded here.
				eqG = a.ParamNe[0]
			}
			found := false
			for _, ex := range a.ParamNe {
				if ex == eqG {
					found = true
					break
				}
			}
			if !found {
				eqOK = false
			}
		}
	}
	if len(internal) == 0 {
		return 0, false
	}
	// Every entry edge must pass a known constant.
	vmax := int64(negInf)
	for _, c := range entries {
		a := c.Args[q]
		if a.Kind != ArgConst {
			return 0, false
		}
		if a.Const > vmax {
			vmax = a.Const
		}
	}

	best := int64(-1)
	if rangeOK && rangeL != posInf && vmax >= rangeL {
		edges := (vmax-rangeL)/d + 1
		frames := edges + 1
		if best < 0 || frames < best {
			best = frames
		}
	}
	if rangeOK && rangeL != posInf && vmax < rangeL {
		// No entry satisfies the guard: recursion never starts.
		if best < 0 || 1 < best {
			best = 1
		}
	}
	if eqOK && eqG != negInf && uniformOK && uniform > 0 {
		ok := true
		for _, c := range entries {
			v := c.Args[q].Const
			if v < eqG || (v-eqG)%uniform != 0 {
				ok = false
				break
			}
		}
		if ok {
			edges := (vmax - eqG) / uniform
			frames := edges + 1
			if best < 0 || frames < best {
				best = frames
			}
		}
	}
	return best, best >= 0
}
