package dataflow

import (
	"sort"

	"biaslab/internal/isa"
	"biaslab/internal/linker"
)

// Abstract interpretation of one function over a value lattice rich enough
// to type every address the code generator can form:
//
//	kTop    — unknown
//	kRange  — integer in [lo, hi] (constant iff lo == hi)
//	kSP     — entry SP plus an offset in [lo, hi] (a frame pointer)
//	kParam  — the function's i-th argument plus a constant delta
//	kDiff   — xor of two compared values (feeds the eq/ne lowering)
//	kPred   — a boolean relation between two tracked operands
//	kSet    — a small set of constants (words read from jalr tables)
//
// Frame slots are tracked as cells keyed by entry-relative offset; branch
// outcomes refine operand ranges (and parameter constraints) along each
// edge, which is what turns a `depth == 0` guard plus a `depth-1` argument
// into a provable recursion bound.

type vkind uint8

const (
	kTop vkind = iota
	kRange
	kSP
	kParam
	kDiff
	kPred
	kSet
)

type value struct {
	k      vkind
	lo, hi int64 // kRange bounds, kSP offsets, kParam delta (lo==hi)
	param  int
	p      *pred
	set    []uint64 // kSet members, sorted
}

func topV() value          { return value{k: kTop} }
func constV(c int64) value { return value{k: kRange, lo: c, hi: c} }
func rangeV(lo, hi int64) value {
	if lo > hi {
		return topV()
	}
	return value{k: kRange, lo: lo, hi: hi}
}

func (v value) isConst() bool { return v.k == kRange && v.lo == v.hi }

// rng returns the best known integer range of v.
func (v value) rng() (int64, int64) {
	switch v.k {
	case kRange:
		return v.lo, v.hi
	case kSet:
		if len(v.set) > 0 {
			return int64(v.set[0]), int64(v.set[len(v.set)-1])
		}
	case kPred:
		return 0, 1
	}
	return negInf, posInf
}

func (v value) eq(w value) bool {
	if v.k != w.k || v.lo != w.lo || v.hi != w.hi || v.param != w.param {
		return false
	}
	if v.k == kSet {
		if len(v.set) != len(w.set) {
			return false
		}
		for i := range v.set {
			if v.set[i] != w.set[i] {
				return false
			}
		}
	}
	if v.k == kPred || v.k == kDiff {
		return v.p == w.p
	}
	return true
}

type relop uint8

const (
	rLt relop = iota
	rLtu
	rEq
	rNe
)

type locKind uint8

const (
	locNone locKind = iota
	locReg
	locSlot
)

// loc names a storage location holding an operand at predicate-creation
// time; gen must still match at branch time for refinement to be sound.
type loc struct {
	kind locKind
	reg  isa.Reg
	off  int64
	gen  uint64
}

type operand struct {
	v    value
	locs [2]loc
}

type pred struct {
	rel  relop
	neg  bool
	a, b operand
}

type cell struct {
	v   value
	gen uint64
	// src remembers the exact frame slot this register value was loaded
	// from, so predicates can refine the slot, not just the scratch.
	src loc
}

type pcon struct {
	lo int64
	ne []int64
}

type state struct {
	regs  [isa.NumRegs]cell
	slots map[int64]cell
	pcons [numArgRegs]pcon
}

func (st *state) clone() *state {
	ns := &state{regs: st.regs, pcons: st.pcons}
	ns.slots = make(map[int64]cell, len(st.slots))
	for k, v := range st.slots {
		ns.slots[k] = v
	}
	for i := range ns.pcons {
		ns.pcons[i].ne = append([]int64(nil), st.pcons[i].ne...)
	}
	return ns
}

// interp carries the per-function interpretation context.
type interp struct {
	exe        *linker.Executable
	fi         *FuncInfo
	gs         *globalStores
	optimistic bool
	insts      []isa.Inst
	gen        uint64

	// collection-phase accumulators
	collecting bool
	touched    []Interval
	paramTouch [numArgRegs][]Interval
	blockMust  bool
}

func (ip *interp) nextGen() uint64 { ip.gen++; return ip.gen }

// joinValue is the lattice join.
func joinValue(a, b value) value {
	if a.eq(b) {
		return a
	}
	switch {
	case a.k == kSP && b.k == kSP:
		return value{k: kSP, lo: minI(a.lo, b.lo), hi: maxI(a.hi, b.hi)}
	case a.k == kParam && b.k == kParam && a.param == b.param && a.lo == b.lo:
		return a
	case a.k == kSet && b.k == kSet:
		u := unionSets(a.set, b.set)
		if len(u) <= maxSetSize {
			return value{k: kSet, set: u}
		}
		fallthrough
	default:
		alo, ahi := a.rng()
		blo, bhi := b.rng()
		if a.k == kSP || b.k == kSP || a.k == kParam || b.k == kParam ||
			a.k == kTop || b.k == kTop || a.k == kDiff || b.k == kDiff {
			return topV()
		}
		return rangeV(minI(alo, blo), maxI(ahi, bhi))
	}
}

const maxSetSize = 16

func unionSets(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	return out
}

// joinInto merges src into dst, reporting whether dst changed. widen pushes
// growing range bounds to infinity to force convergence.
func (ip *interp) joinInto(dst, src *state, widen bool) bool {
	changed := false
	for r := range dst.regs {
		nv := joinValue(dst.regs[r].v, src.regs[r].v)
		if widen {
			nv = widenValue(dst.regs[r].v, nv)
		}
		if !nv.eq(dst.regs[r].v) {
			dst.regs[r] = cell{v: nv, gen: ip.nextGen()}
			changed = true
		} else if dst.regs[r].gen != src.regs[r].gen || dst.regs[r].src != src.regs[r].src {
			// Same value from a different write: refresh identity so stale
			// predicate locations cannot refine it.
			if dst.regs[r].gen != src.regs[r].gen {
				dst.regs[r] = cell{v: nv, gen: ip.nextGen()}
			}
		}
	}
	for off, dc := range dst.slots {
		sc, ok := src.slots[off]
		if !ok {
			delete(dst.slots, off)
			changed = true
			continue
		}
		nv := joinValue(dc.v, sc.v)
		if widen {
			nv = widenValue(dc.v, nv)
		}
		if !nv.eq(dc.v) {
			dst.slots[off] = cell{v: nv, gen: ip.nextGen()}
			changed = true
		} else if dc.gen != sc.gen {
			dst.slots[off] = cell{v: nv, gen: ip.nextGen()}
		}
	}
	for i := range dst.pcons {
		if src.pcons[i].lo < dst.pcons[i].lo {
			dst.pcons[i].lo = src.pcons[i].lo
			changed = true
		}
		ne := intersectNe(dst.pcons[i].ne, src.pcons[i].ne)
		if len(ne) != len(dst.pcons[i].ne) {
			dst.pcons[i].ne = ne
			changed = true
		}
	}
	return changed
}

func widenValue(old, nv value) value {
	if old.k != nv.k {
		return nv
	}
	switch nv.k {
	case kRange, kSP:
		lo, hi := nv.lo, nv.hi
		if lo < old.lo {
			lo = negInf
		}
		if hi > old.hi {
			hi = posInf
		}
		return value{k: nv.k, lo: lo, hi: hi}
	}
	return nv
}

func intersectNe(a, b []int64) []int64 {
	var out []int64
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func satAdd(a, b int64) int64 {
	if a == negInf || b == negInf {
		return negInf
	}
	if a == posInf || b == posInf {
		return posInf
	}
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		if b > 0 {
			return posInf
		}
		return negInf
	}
	return s
}

// globalStores accumulates, across all functions, the absolute data ranges
// the program may store to, so loads from initialized data can be proven
// read-only (the soundness condition for seeing through jalr tables).
type globalStores struct {
	stores []Interval
	wild   bool
	loads  []Interval
}

func (gs *globalStores) conflicts() bool {
	if len(gs.loads) == 0 {
		return false
	}
	if gs.wild {
		return true
	}
	for _, l := range gs.loads {
		for _, s := range gs.stores {
			if l.Lo < s.Hi && s.Lo < l.Hi {
				return true
			}
		}
	}
	return false
}

// interpFunc runs the fixpoint plus a final collection pass over one
// function, filling fi's Touched/Calls/Transfers/... fields.
func interpFunc(exe *linker.Executable, fi *FuncInfo, gs *globalStores, optimistic bool) {
	fi.Exact = true
	ip := &interp{exe: exe, fi: fi, gs: gs, optimistic: optimistic}
	start := fi.Addr - exe.TextBase
	n := int(fi.Size) / isa.InstSize
	ip.insts = make([]isa.Inst, n)
	for i := 0; i < n; i++ {
		ip.insts[i] = isa.DecodeBytes(exe.Text[start+uint64(i*isa.InstSize):])
	}
	if len(fi.Blocks) == 0 || n == 0 {
		fi.Touched = nil
		return
	}

	// The fixpoint keeps one state per CFG *edge* (depth-1 trace
	// partitioning): each block is re-interpreted from every predecessor's
	// edge-state separately, so a short-circuit join followed by a branch on
	// the merged condition still prunes per-path — the infeasible
	// predecessor simply contributes nothing to the refined out-edge.
	nb := len(fi.Blocks)
	const entryPred = -1
	ins := make([]map[int]*state, nb)
	ins[0] = map[int]*state{entryPred: entryState()}
	joins := make([]map[int]int, nb)
	inQueue := make([]bool, nb)
	queue := []int{0}
	inQueue[0] = true
	visits := 0
	budget := 400 * nb
	if budget < 4000 {
		budget = 4000
	}
	for len(queue) > 0 {
		// Lowest block index first approximates reverse postorder on the
		// address-ordered blocks the code generator emits.
		bi := 0
		for i := range queue {
			if queue[i] < queue[bi] {
				bi = i
			}
		}
		b := queue[bi]
		queue = append(queue[:bi], queue[bi+1:]...)
		inQueue[b] = false
		preds := make([]int, 0, len(ins[b]))
		for p := range ins[b] {
			preds = append(preds, p)
		}
		sort.Ints(preds)
		for _, p := range preds {
			visits++
			if visits > budget {
				fi.note("abstract interpretation budget exceeded")
				return
			}
			outs := ip.transfer(fi.Blocks[b], ins[b][p].clone())
			for _, o := range outs {
				s := o.succ
				if ins[s] == nil {
					ins[s] = map[int]*state{}
				}
				if cur := ins[s][b]; cur == nil {
					ins[s][b] = o.st.clone()
				} else {
					if joins[s] == nil {
						joins[s] = map[int]int{}
					}
					joins[s][b]++
					if !ip.joinInto(cur, o.st, joins[s][b] > 8) {
						continue
					}
				}
				if !inQueue[s] {
					queue = append(queue, s)
					inQueue[s] = true
				}
			}
		}
	}

	// Collection pass over the stable states, one visit per block from the
	// join of its edge-states.
	ip.collecting = true
	for b, edges := range ins {
		if len(edges) == 0 {
			continue
		}
		preds := make([]int, 0, len(edges))
		for p := range edges {
			preds = append(preds, p)
		}
		sort.Ints(preds)
		st := edges[preds[0]].clone()
		for _, p := range preds[1:] {
			ip.joinInto(st, edges[p], false)
		}
		ip.blockMust = fi.Blocks[b].MustExec
		ip.transfer(fi.Blocks[b], st)
	}
	ip.finalize()
}

func entryState() *state {
	st := &state{slots: map[int64]cell{}}
	for r := range st.regs {
		st.regs[r] = cell{v: topV()}
	}
	st.regs[isa.SP] = cell{v: value{k: kSP, lo: 0, hi: 0}}
	for i := 0; i < numArgRegs; i++ {
		st.regs[isa.A0+isa.Reg(i)] = cell{v: value{k: kParam, param: i}}
		st.pcons[i].lo = negInf
	}
	return st
}

type edgeOut struct {
	succ int
	st   *state
}

// read returns the cell of a register, with R0 hardwired to zero.
func (st *state) read(r isa.Reg) cell {
	if r == isa.R0 {
		return cell{v: constV(0)}
	}
	return st.regs[r]
}

func (ip *interp) write(st *state, r isa.Reg, v value) {
	if r == isa.R0 {
		return
	}
	st.regs[r] = cell{v: v, gen: ip.nextGen()}
}

func (ip *interp) writeFrom(st *state, r isa.Reg, v value, src loc) {
	if r == isa.R0 {
		return
	}
	st.regs[r] = cell{v: v, gen: ip.nextGen(), src: src}
}

// transfer interprets one block from its in-state, returning per-successor
// out-states (with branch refinement applied on conditional edges).
func (ip *interp) transfer(b *Block, st *state) []edgeOut {
	fi := ip.fi
	n := int((b.End - b.Start) / uint64(isa.InstSize))
	firstIdx := int(b.Start-fi.Addr) / isa.InstSize
	for i := 0; i < n; i++ {
		in := ip.insts[firstIdx+i]
		pc := b.Start + uint64(i*isa.InstSize)
		last := i == n-1
		if last {
			switch {
			case in.Op.IsBranch():
				return ip.branchOuts(b, st, in)
			case in.Op == isa.OpJmp:
				if ip.collecting {
					target := uint64(int64(pc) + int64(isa.InstSize) + int64(in.Imm)*isa.InstSize)
					fi.Transfers = append(fi.Transfers, Transfer{PC: pc, Target: target, MustExec: b.MustExec})
				}
				return succStates(b, st)
			case in.Op == isa.OpJalr && in.Rd == isa.R0:
				if rv := st.read(isa.RV).v; rv.k == kSP {
					ip.escapeSP(rv, "frame pointer returned to caller")
				} else if rv.k == kParam {
					ip.paramEscape(rv.param)
				}
				return nil
			case in.Op == isa.OpHalt:
				return nil
			}
		}
		ip.step(st, in, pc)
		if last {
			return succStates(b, st)
		}
	}
	return succStates(b, st)
}

func succStates(b *Block, st *state) []edgeOut {
	outs := make([]edgeOut, 0, len(b.Succs))
	for i, s := range b.Succs {
		o := st
		if i > 0 {
			o = st.clone()
		}
		outs = append(outs, edgeOut{succ: s, st: o})
	}
	return outs
}

// branchOuts handles a conditional branch terminator, refining each edge.
func (ip *interp) branchOuts(b *Block, st *state, in isa.Inst) []edgeOut {
	if ip.collecting {
		pc := b.End - uint64(isa.InstSize)
		ip.fi.CondBranches = append(ip.fi.CondBranches, pc)
	}
	if len(b.Succs) == 0 {
		return nil
	}
	// Successor 0 is the taken edge, successor 1 (when present and distinct)
	// the fallthrough, matching buildCFG's ordering.
	outs := succStates(b, st)
	if len(outs) != 2 {
		return outs
	}
	a := st.read(in.Rs1)
	c := st.read(in.Rs2)
	// A branch whose outcome is decided statically keeps only the feasible
	// edge; the other predecessor path contributes no state downstream.
	if dec, ok := evalBranch(in.Op, a.v, c.v); ok {
		if dec {
			return outs[:1]
		}
		return outs[1:]
	}
	switch in.Op {
	case isa.OpBne, isa.OpBeq:
		takenIsTrue := in.Op == isa.OpBne
		if in.Rs2 == isa.R0 && (a.v.k == kPred || a.v.k == kDiff) {
			// kDiff is the raw xor of a comparison: nonzero exactly when its
			// rNe predicate holds, so the same assumption applies.
			ip.assume(outs[0].st, a.v.p, takenIsTrue)
			ip.assume(outs[1].st, a.v.p, !takenIsTrue)
			return outs
		}
		// Direct value test against a constant (or two ranges).
		p := &pred{rel: rEq, a: operandFor(st, in.Rs1, a), b: operandFor(st, in.Rs2, c)}
		ip.assume(outs[0].st, p, in.Op == isa.OpBeq)
		ip.assume(outs[1].st, p, in.Op != isa.OpBeq)
	case isa.OpBlt, isa.OpBge:
		p := &pred{rel: rLt, a: operandFor(st, in.Rs1, a), b: operandFor(st, in.Rs2, c)}
		ip.assume(outs[0].st, p, in.Op == isa.OpBlt)
		ip.assume(outs[1].st, p, in.Op != isa.OpBlt)
	case isa.OpBltu, isa.OpBgeu:
		p := &pred{rel: rLtu, a: operandFor(st, in.Rs1, a), b: operandFor(st, in.Rs2, c)}
		ip.assume(outs[0].st, p, in.Op == isa.OpBltu)
		ip.assume(outs[1].st, p, in.Op != isa.OpBltu)
	}
	return outs
}

// evalBranch decides a branch statically when the operand ranges allow it.
func evalBranch(op isa.Op, a, b value) (taken, ok bool) {
	alo, ahi := a.rng()
	blo, bhi := b.rng()
	if a.k == kSP || a.k == kParam || a.k == kDiff || b.k == kSP || b.k == kParam || b.k == kDiff {
		return false, false
	}
	switch op {
	case isa.OpBeq:
		if a.isConst() && b.isConst() {
			return a.lo == b.lo, true
		}
		if ahi < blo || bhi < alo {
			return false, true
		}
	case isa.OpBne:
		if a.isConst() && b.isConst() {
			return a.lo != b.lo, true
		}
		if ahi < blo || bhi < alo {
			return true, true
		}
	case isa.OpBlt:
		if ahi < blo {
			return true, true
		}
		if alo >= bhi {
			return false, true
		}
	case isa.OpBge:
		if alo >= bhi {
			return true, true
		}
		if ahi < blo {
			return false, true
		}
	case isa.OpBltu, isa.OpBgeu:
		if alo < 0 || blo < 0 {
			return false, false
		}
		if op == isa.OpBltu {
			if ahi < blo {
				return true, true
			}
			if alo >= bhi {
				return false, true
			}
		} else {
			if alo >= bhi {
				return true, true
			}
			if ahi < blo {
				return false, true
			}
		}
	}
	return false, false
}

// operandFor snapshots a register operand with its refinement locations.
func operandFor(st *state, r isa.Reg, c cell) operand {
	op := operand{v: c.v}
	if r != isa.R0 {
		op.locs[0] = loc{kind: locReg, reg: r, gen: c.gen}
		if c.src.kind == locSlot {
			op.locs[1] = c.src
		}
	}
	return op
}

// settlePred replaces every cell holding exactly this predicate object with
// its now-known constant value, so later branches on copies of the condition
// become statically decidable (the short-circuit || / && lowerings).
func (ip *interp) settlePred(st *state, p *pred, truth bool) {
	for r := range st.regs {
		v := st.regs[r].v
		if (v.k == kPred && v.p == p) || (v.k == kDiff && v.p == p && !truth) {
			// A kDiff cell is the raw xor: known only when the equality
			// holds (diff == 0, i.e. its rNe pred is false).
			st.regs[r] = cell{v: constV(b2i(v.k == kPred && truth)), gen: ip.nextGen()}
		}
	}
	for off, sc := range st.slots {
		v := sc.v
		if (v.k == kPred && v.p == p) || (v.k == kDiff && v.p == p && !truth) {
			st.slots[off] = cell{v: constV(b2i(v.k == kPred && truth)), gen: ip.nextGen()}
		}
	}
}

// decideInner propagates a decided boolean test into a nested predicate:
// if a cell compared against a constant is itself a predicate (or a raw xor
// difference), the comparison decides that inner predicate too.
func (ip *interp) decideInner(st *state, v, other value, eq bool) {
	if !other.isConst() {
		return
	}
	c := other.lo
	switch v.k {
	case kPred:
		switch {
		case eq && (c == 0 || c == 1):
			ip.assume(st, v.p, c == 1)
		case !eq && c == 0:
			ip.assume(st, v.p, true)
		case !eq && c == 1:
			ip.assume(st, v.p, false)
		}
	case kDiff:
		if c == 0 {
			// diff == 0 exactly when the underlying rNe predicate is false.
			ip.assume(st, v.p, !eq)
		}
	}
}

// assume refines st under "p is truth".
func (ip *interp) assume(st *state, p *pred, truth bool) {
	if p == nil {
		return
	}
	ip.settlePred(st, p, truth)
	if p.neg {
		truth = !truth
	}
	alo, ahi := p.a.v.rng()
	blo, bhi := p.b.v.rng()
	nalo, nahi, nblo, nbhi := alo, ahi, blo, bhi
	switch p.rel {
	case rEq:
		if truth {
			nalo, nahi = maxI(alo, blo), minI(ahi, bhi)
			nblo, nbhi = nalo, nahi
			if p.b.v.isConst() {
				ip.refineParamEq(st, p.a.v, p.b.v.lo)
			}
			if p.a.v.isConst() {
				ip.refineParamEq(st, p.b.v, p.a.v.lo)
			}
			ip.decideInner(st, p.a.v, p.b.v, true)
			ip.decideInner(st, p.b.v, p.a.v, true)
		} else {
			nalo, nahi = trimNe(alo, ahi, p.b.v)
			nblo, nbhi = trimNe(blo, bhi, p.a.v)
			if p.b.v.isConst() {
				ip.refineParamNe(st, p.a.v, p.b.v.lo)
			}
			if p.a.v.isConst() {
				ip.refineParamNe(st, p.b.v, p.a.v.lo)
			}
			ip.decideInner(st, p.a.v, p.b.v, false)
			ip.decideInner(st, p.b.v, p.a.v, false)
		}
	case rNe:
		ip.assume(st, &pred{rel: rEq, a: p.a, b: p.b}, !truth)
		return
	case rLt, rLtu:
		if p.rel == rLtu && (alo < 0 || blo < 0) {
			return // unsigned refinement only on provably nonnegative ranges
		}
		if truth {
			nahi = minI(ahi, satAdd(bhi, -1))
			nblo = maxI(blo, satAdd(alo, 1))
		} else {
			nalo = maxI(alo, blo)
			nbhi = minI(bhi, ahi)
			ip.refineParamLo(st, p.a.v, blo)
		}
		if truth {
			ip.refineParamLo(st, p.b.v, satAdd(alo, 1))
		}
	}
	ip.applyRange(st, p.a, nalo, nahi)
	ip.applyRange(st, p.b, nblo, nbhi)
}

func trimNe(lo, hi int64, other value) (int64, int64) {
	if !other.isConst() {
		return lo, hi
	}
	k := other.lo
	if lo == k && lo < hi {
		lo++
	}
	if hi == k && lo < hi {
		hi--
	}
	return lo, hi
}

func (ip *interp) refineParamEq(st *state, v value, k int64) {
	if v.k == kParam && v.param < numArgRegs {
		want := satAdd(k, -v.lo)
		if want > st.pcons[v.param].lo {
			st.pcons[v.param].lo = want
		}
	}
}

func (ip *interp) refineParamNe(st *state, v value, k int64) {
	if v.k == kParam && v.param < numArgRegs {
		ex := satAdd(k, -v.lo)
		for _, e := range st.pcons[v.param].ne {
			if e == ex {
				return
			}
		}
		if len(st.pcons[v.param].ne) < 8 {
			st.pcons[v.param].ne = append(st.pcons[v.param].ne, ex)
		}
	}
}

func (ip *interp) refineParamLo(st *state, v value, lo int64) {
	if v.k == kParam && v.param < numArgRegs && lo != negInf {
		want := satAdd(lo, -v.lo)
		if want > st.pcons[v.param].lo {
			st.pcons[v.param].lo = want
		}
	}
}

// applyRange writes a refined range back to an operand's locations, if the
// location still holds the predicate-time value.
func (ip *interp) applyRange(st *state, op operand, lo, hi int64) {
	if op.v.k != kRange || (lo == op.v.lo && hi == op.v.hi) {
		return
	}
	nv := rangeV(lo, hi)
	if nv.k == kTop {
		return
	}
	for _, l := range op.locs {
		switch l.kind {
		case locReg:
			if st.regs[l.reg].gen == l.gen {
				st.regs[l.reg] = cell{v: nv, gen: ip.nextGen(), src: st.regs[l.reg].src}
			}
		case locSlot:
			if c, ok := st.slots[l.off]; ok && c.gen == l.gen {
				st.slots[l.off] = cell{v: nv, gen: ip.nextGen()}
			}
		}
	}
}

// step interprets one non-terminator instruction.
func (ip *interp) step(st *state, in isa.Inst, pc uint64) {
	a := st.read(in.Rs1)
	b := st.read(in.Rs2)
	switch in.Op {
	case isa.OpNop, isa.OpInvalid:
		// nothing
	case isa.OpAddi:
		if in.Rd == isa.SP && in.Rs1 == isa.SP {
			// Prologue/epilogue SP adjustment.
			if ip.fi.Frame == 0 && in.Imm < 0 && a.v.k == kSP && a.v.lo == 0 && a.v.hi == 0 {
				ip.fi.Frame = int64(-in.Imm)
			}
			ip.write(st, isa.SP, addConst(a.v, int64(in.Imm)))
			return
		}
		ip.write(st, in.Rd, addConst(a.v, int64(in.Imm)))
	case isa.OpAdd:
		ip.write(st, in.Rd, addValues(a.v, b.v))
	case isa.OpSub:
		ip.write(st, in.Rd, subValues(a.v, b.v))
	case isa.OpLui:
		ip.write(st, in.Rd, constV(int64(uint64(uint16(in.Imm))<<16)))
	case isa.OpOri:
		imm := int64(uint16(in.Imm))
		if a.v.isConst() {
			ip.write(st, in.Rd, constV(a.v.lo|imm))
		} else if lo, hi := a.v.rng(); lo >= 0 && imm >= 0 && hi != posInf {
			ip.write(st, in.Rd, rangeV(lo, hi|imm))
		} else {
			ip.write(st, in.Rd, topV())
		}
	case isa.OpAndi:
		imm := int64(uint16(in.Imm))
		if a.v.isConst() {
			ip.write(st, in.Rd, constV(a.v.lo&imm))
		} else {
			ip.write(st, in.Rd, rangeV(0, imm))
		}
	case isa.OpXori:
		imm := int64(uint16(in.Imm))
		switch {
		case a.v.k == kPred && imm == 1:
			np := *a.v.p
			np.neg = !np.neg
			ip.write(st, in.Rd, value{k: kPred, p: &np})
		case a.v.isConst():
			ip.write(st, in.Rd, constV(a.v.lo^imm))
		default:
			ip.write(st, in.Rd, topV())
		}
	case isa.OpXor:
		if a.v.isConst() && b.v.isConst() {
			ip.write(st, in.Rd, constV(a.v.lo^b.v.lo))
		} else {
			p := &pred{rel: rNe, a: operandFor(st, in.Rs1, a), b: operandFor(st, in.Rs2, b)}
			ip.write(st, in.Rd, value{k: kDiff, p: p})
		}
	case isa.OpAnd, isa.OpOr:
		if a.v.isConst() && b.v.isConst() {
			if in.Op == isa.OpAnd {
				ip.write(st, in.Rd, constV(a.v.lo&b.v.lo))
			} else {
				ip.write(st, in.Rd, constV(a.v.lo|b.v.lo))
			}
		} else {
			ip.write(st, in.Rd, topV())
		}
	case isa.OpSlt, isa.OpSltu:
		switch {
		case in.Op == isa.OpSltu && in.Rs1 == isa.R0 && b.v.k == kDiff:
			// sltu d, r0, (a^b) — the Ne lowering.
			ip.write(st, in.Rd, value{k: kPred, p: b.v.p})
		case a.v.isConst() && b.v.isConst():
			lt := a.v.lo < b.v.lo
			if in.Op == isa.OpSltu {
				lt = uint64(a.v.lo) < uint64(b.v.lo)
			}
			ip.write(st, in.Rd, constV(b2i(lt)))
		default:
			rel := rLt
			if in.Op == isa.OpSltu {
				rel = rLtu
			}
			p := &pred{rel: rel, a: operandFor(st, in.Rs1, a), b: operandFor(st, in.Rs2, b)}
			ip.write(st, in.Rd, value{k: kPred, p: p})
		}
	case isa.OpSlti, isa.OpSltiu:
		imm := int64(in.Imm)
		if in.Op == isa.OpSltiu {
			imm = int64(uint16(in.Imm))
		}
		switch {
		case in.Op == isa.OpSltiu && imm == 1 && a.v.k == kDiff:
			// sltiu d, (a^b), 1 — the Eq lowering.
			np := *a.v.p
			np.rel = rEq
			ip.write(st, in.Rd, value{k: kPred, p: &np})
		case a.v.isConst():
			lt := a.v.lo < imm
			if in.Op == isa.OpSltiu {
				lt = uint64(a.v.lo) < uint64(imm)
			}
			ip.write(st, in.Rd, constV(b2i(lt)))
		default:
			rel := rLt
			if in.Op == isa.OpSltiu {
				rel = rLtu
			}
			p := &pred{rel: rel, a: operandFor(st, in.Rs1, a), b: operand{v: constV(imm)}}
			ip.write(st, in.Rd, value{k: kPred, p: p})
		}
	case isa.OpSlli:
		sh := uint(in.Imm) & 63
		lo, hi := a.v.rng()
		if a.v.isConst() {
			ip.write(st, in.Rd, constV(a.v.lo<<sh))
		} else if a.v.k == kRange && lo >= 0 && sh < 32 && hi < 1<<31 {
			ip.write(st, in.Rd, rangeV(lo<<sh, hi<<sh))
		} else {
			ip.write(st, in.Rd, topV())
		}
	case isa.OpSrli:
		if a.v.isConst() {
			ip.write(st, in.Rd, constV(int64(uint64(a.v.lo)>>(uint(in.Imm)&63))))
		} else if lo, hi := a.v.rng(); a.v.k == kRange && lo >= 0 {
			sh := uint(in.Imm) & 63
			ip.write(st, in.Rd, rangeV(lo>>sh, hi>>sh))
		} else {
			ip.write(st, in.Rd, topV())
		}
	case isa.OpSrai:
		if a.v.isConst() {
			ip.write(st, in.Rd, constV(a.v.lo>>(uint(in.Imm)&63)))
		} else if a.v.k == kRange {
			sh := uint(in.Imm) & 63
			ip.write(st, in.Rd, rangeV(shiftFloor(a.v.lo, sh), shiftFloor(a.v.hi, sh)))
		} else {
			ip.write(st, in.Rd, topV())
		}
	case isa.OpSll, isa.OpSrl, isa.OpSra:
		if a.v.isConst() && b.v.isConst() {
			sh := uint(b.v.lo) & 63
			switch in.Op {
			case isa.OpSll:
				ip.write(st, in.Rd, constV(a.v.lo<<sh))
			case isa.OpSrl:
				ip.write(st, in.Rd, constV(int64(uint64(a.v.lo)>>sh)))
			default:
				ip.write(st, in.Rd, constV(a.v.lo>>sh))
			}
		} else {
			ip.write(st, in.Rd, topV())
		}
	case isa.OpMul:
		ip.write(st, in.Rd, mulValues(a.v, b.v))
	case isa.OpMuli:
		ip.write(st, in.Rd, mulValues(a.v, constV(int64(in.Imm))))
	case isa.OpDiv, isa.OpRem:
		if a.v.isConst() && b.v.isConst() && b.v.lo != 0 {
			if in.Op == isa.OpDiv {
				ip.write(st, in.Rd, constV(a.v.lo/b.v.lo))
			} else {
				ip.write(st, in.Rd, constV(a.v.lo%b.v.lo))
			}
		} else {
			ip.write(st, in.Rd, topV())
		}
	case isa.OpJal:
		ip.call(st, pc, uint64(in.Imm)*uint64(isa.InstSize), false)
	case isa.OpJalr:
		if in.Rd != isa.R0 {
			ip.indirectCall(st, pc, a)
		}
		// jalr r0 mid-block cannot come out of the code generator (returns
		// end blocks); ignore defensively.
	case isa.OpSys:
		ip.write(st, isa.RV, topV())
	default:
		if in.Op.IsLoad() {
			ip.load(st, in, a)
		} else if in.Op.IsStore() {
			ip.store(st, in, a, b)
		}
	}
}

func shiftFloor(x int64, sh uint) int64 {
	if x == negInf || x == posInf {
		return x
	}
	return x >> sh
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func addConst(v value, k int64) value {
	return addValues(v, constV(k))
}

func addValues(a, b value) value {
	// Keep pointer-typed values pointer-typed under offset arithmetic.
	if b.k == kSP || b.k == kParam {
		a, b = b, a
	}
	blo, bhi := b.rng()
	switch a.k {
	case kSP:
		if b.k == kSP {
			return topV()
		}
		// Any integer offset (even unbounded) keeps the frame typing; the
		// in-frame clip bounds the reachable bytes.
		return value{k: kSP, lo: satAdd(a.lo, blo), hi: satAdd(a.hi, bhi)}
	case kParam:
		if b.isConst() {
			return value{k: kParam, param: a.param, lo: satAdd(a.lo, blo), hi: satAdd(a.hi, bhi)}
		}
		// Pointer parameters indexed by a bounded expression stay
		// param-relative so the access can be attributed to the pointed-to
		// slot; the offset range rides in lo/hi.
		return value{k: kParam, param: a.param, lo: satAdd(a.lo, blo), hi: satAdd(a.hi, bhi)}
	case kRange:
		if b.k == kRange || b.k == kSet || b.k == kPred {
			return rangeV(satAdd(a.lo, blo), satAdd(a.hi, bhi))
		}
	case kSet:
		if b.isConst() {
			out := make([]uint64, len(a.set))
			for i, m := range a.set {
				out[i] = uint64(int64(m) + blo)
			}
			return value{k: kSet, set: out}
		}
		alo, ahi := a.rng()
		if b.k == kRange {
			return rangeV(satAdd(alo, blo), satAdd(ahi, bhi))
		}
	}
	return topV()
}

func subValues(a, b value) value {
	blo, bhi := b.rng()
	switch {
	case a.k == kSP && b.k == kSP:
		return rangeV(satAdd(a.lo, -b.hi), satAdd(a.hi, -b.lo))
	case a.k == kSP:
		return value{k: kSP, lo: satAdd(a.lo, -bhi), hi: satAdd(a.hi, -blo)}
	case a.k == kParam && b.k != kSP && b.k != kParam:
		return value{k: kParam, param: a.param, lo: satAdd(a.lo, -bhi), hi: satAdd(a.hi, -blo)}
	case a.k == kRange && b.k == kRange:
		return rangeV(satAdd(a.lo, -bhi), satAdd(a.hi, -blo))
	}
	return topV()
}

func mulValues(a, b value) value {
	if a.isConst() && b.isConst() {
		return constV(a.lo * b.lo)
	}
	if b.isConst() {
		a, b = b, a
	}
	if a.isConst() && b.k == kRange {
		k := a.lo
		if k == 0 {
			return constV(0)
		}
		if k > 0 && k < 1<<20 {
			return rangeV(satMul(b.lo, k), satMul(b.hi, k))
		}
		if k < 0 && k > -(1<<20) {
			return rangeV(satMul(b.hi, k), satMul(b.lo, k))
		}
	}
	return topV()
}

func satMul(a, k int64) int64 {
	if a == negInf || a == posInf {
		if (a == posInf) == (k > 0) {
			return posInf
		}
		return negInf
	}
	p := a * k
	if a != 0 && p/a != k {
		if (a > 0) == (k > 0) {
			return posInf
		}
		return negInf
	}
	return p
}

// segKind classifies an absolute address range.
type segKind uint8

const (
	segUnknown segKind = iota
	segData            // initialized data or bss
)

func (ip *interp) segOf(lo, hi int64) segKind {
	dbase := int64(ip.exe.DataBase)
	dend := int64(ip.exe.BSSBase + ip.exe.BSSSize)
	if lo >= dbase && lo < dend {
		// Derived from a data symbol: the segment axiom keeps it in data
		// even when the upper bound is unknown.
		return segData
	}
	return segUnknown
}

// load interprets one load instruction.
func (ip *interp) load(st *state, in isa.Inst, base cell) {
	size := int64(in.Op.MemBytes())
	addr := addConst(base.v, int64(in.Imm))
	switch addr.k {
	case kSP:
		ip.touchSP(st, addr, size)
		if addr.lo == addr.hi && size == 8 {
			if c, ok := st.slots[addr.lo]; ok {
				ip.writeFrom(st, in.Rd, c.v, loc{kind: locSlot, off: addr.lo, gen: c.gen})
				return
			}
		}
		ip.write(st, in.Rd, topV())
	case kParam:
		ip.touchParam(addr, size)
		ip.write(st, in.Rd, topV())
	case kRange:
		if ip.segOf(addr.lo, addr.hi) == segData {
			ip.write(st, in.Rd, ip.dataLoad(addr, size))
			return
		}
		ip.write(st, in.Rd, topV())
		ip.topAccess(st, "load")
	default:
		ip.write(st, in.Rd, topV())
		ip.topAccess(st, "load")
	}
}

// dataLoad reads initialized data optimistically, returning the loaded
// word(s) as a constant or small set. Soundness is re-established after all
// functions are interpreted: if any store may alias a read datum, the whole
// analysis re-runs with dataLoad degraded to Top.
func (ip *interp) dataLoad(addr value, size int64) value {
	if !ip.optimistic || size != 8 {
		return topV()
	}
	dbase := int64(ip.exe.DataBase)
	dend := dbase + int64(len(ip.exe.Data))
	lo, hi := addr.lo, addr.hi
	if lo%8 != 0 || lo < dbase || hi == posInf || hi+size > dend || hi-lo > 512 {
		return topV()
	}
	var words []uint64
	for a := lo; a <= hi; a += 8 {
		off := a - dbase
		var w uint64
		for i := int64(0); i < 8; i++ {
			w |= uint64(ip.exe.Data[off+i]) << (8 * i)
		}
		words = append(words, w)
		if len(words) > maxSetSize {
			return topV()
		}
	}
	if ip.collecting {
		ip.gs.loads = append(ip.gs.loads, Interval{Lo: lo, Hi: hi + size})
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	dedup := words[:1]
	for _, w := range words[1:] {
		if w != dedup[len(dedup)-1] {
			dedup = append(dedup, w)
		}
	}
	if len(dedup) == 1 {
		return constV(int64(dedup[0]))
	}
	return value{k: kSet, set: dedup}
}

// store interprets one store instruction.
func (ip *interp) store(st *state, in isa.Inst, base, val cell) {
	size := int64(in.Op.MemBytes())
	addr := addConst(base.v, int64(in.Imm))
	switch addr.k {
	case kSP:
		ip.touchSP(st, addr, size)
		if addr.lo == addr.hi && size == 8 {
			st.slots[addr.lo] = cell{v: val.v, gen: ip.nextGen()}
			return
		}
		// Imprecise or narrow store: weak update, invalidate overlap.
		lo, hi := addr.lo, satAdd(addr.hi, size)
		for off := range st.slots {
			if off+8 > lo && off < hi {
				delete(st.slots, off)
			}
		}
		ip.storeEscape(val.v, "frame pointer stored with imprecise address")
	case kParam:
		ip.touchParam(addr, size)
		ip.storeEscape(val.v, "frame pointer stored through pointer argument")
	case kRange:
		if ip.segOf(addr.lo, addr.hi) == segData {
			if ip.collecting {
				hi := addr.hi
				if hi == posInf {
					hi = int64(ip.exe.BSSBase + ip.exe.BSSSize)
				}
				ip.gs.stores = append(ip.gs.stores, Interval{Lo: addr.lo, Hi: hi + size})
			}
		} else {
			ip.topAccess(st, "store")
			if ip.collecting {
				ip.gs.wild = true
			}
		}
		ip.storeEscape(val.v, "frame pointer stored to memory")
	default:
		ip.topAccess(st, "store")
		if ip.collecting {
			ip.gs.wild = true
		}
		ip.storeEscape(val.v, "frame pointer stored to memory")
	}
}

// storeEscape classifies a stored value: a frame pointer leaving the frame
// discipline is a hard escape; a parameter is only conditionally one — the
// condition resolves against what callers actually pass.
func (ip *interp) storeEscape(v value, why string) {
	switch v.k {
	case kSP:
		ip.escapeSP(v, why)
	case kParam:
		ip.paramEscape(v.param)
	}
}

func (ip *interp) paramEscape(p int) {
	if ip.collecting && p >= 0 && p < numArgRegs {
		ip.fi.paramEsc[p] = true
	}
}

// touchSP records a frame access at entry-relative offsets.
func (ip *interp) touchSP(st *state, addr value, size int64) {
	if !ip.collecting {
		return
	}
	hi := satAdd(addr.hi, size)
	ip.touched = append(ip.touched, Interval{Lo: addr.lo, Hi: hi})
}

// touchParam records an access through a pointer argument.
func (ip *interp) touchParam(addr value, size int64) {
	if !ip.collecting || addr.param >= numArgRegs {
		return
	}
	hi := satAdd(addr.hi, size)
	ip.paramTouch[addr.param] = append(ip.paramTouch[addr.param], Interval{Lo: addr.lo, Hi: hi})
}

// topAccess marks a memory access through an untyped pointer. It only
// costs exactness if a frame pointer escaped somewhere in the program — the
// resolution happens in Analyze once all functions are done.
func (ip *interp) topAccess(st *state, what string) {
	if ip.collecting {
		ip.fi.Notes = append(ip.fi.Notes, topAccessMarker+what)
	}
}

// topAccessMarker prefixes provisional notes that finalize() either deletes
// (no frame pointer escaped: the access cannot be a stack access) or turns
// into a real inexactness reason.
const topAccessMarker = "\x00top-access:"

func (ip *interp) escapeSP(v value, why string) {
	_ = v
	if !ip.collecting {
		return
	}
	ip.fi.Notes = append(ip.fi.Notes, escapeMarker+why)
}

const escapeMarker = "\x00sp-escape:"

// call interprets a (direct or resolved-target) call site.
func (ip *interp) call(st *state, pc, target uint64, indirect bool) {
	if ip.collecting {
		c := Call{PC: pc, Target: target, Indirect: indirect, MustExec: ip.blockMust}
		for i := 0; i < numArgRegs; i++ {
			c.Args[i] = ip.argOf(st, st.read(isa.A0+isa.Reg(i)).v)
		}
		ip.fi.Calls = append(ip.fi.Calls, c)
		if !indirect {
			ip.fi.Transfers = append(ip.fi.Transfers, Transfer{PC: pc, Target: target, MustExec: ip.blockMust})
		}
	}
	ip.clobberCall(st)
}

func (ip *interp) argOf(st *state, v value) Arg {
	switch {
	case v.isConst():
		return Arg{Kind: ArgConst, Const: v.lo}
	case v.k == kParam && v.lo == v.hi:
		pc := st.pcons[v.param]
		return Arg{
			Kind: ArgParam, Param: v.param, Delta: v.lo,
			ParamLo: pc.lo, ParamNe: append([]int64(nil), pc.ne...),
		}
	case v.k == kSP && v.lo == v.hi:
		return Arg{Kind: ArgSP, SPOff: v.lo}
	case v.k == kSP:
		ip.fi.Notes = append(ip.fi.Notes, escapeMarker+"frame pointer with imprecise offset passed to callee")
		return Arg{Kind: ArgUnknown}
	default:
		return Arg{Kind: ArgUnknown}
	}
}

// clobberCall applies the ABI: caller-saved registers die, callee-saved and
// SP survive; frame slots a passed-in pointer can reach may be rewritten.
func (ip *interp) clobberCall(st *state) {
	var spArgs []int64
	for i := 0; i < numArgRegs; i++ {
		v := st.read(isa.A0 + isa.Reg(i)).v
		if v.k == kSP {
			spArgs = append(spArgs, v.lo)
		}
	}
	for _, r := range callerSaved {
		st.regs[r] = cell{v: topV(), gen: ip.nextGen()}
	}
	for _, off := range spArgs {
		for so := range st.slots {
			if so >= off {
				delete(st.slots, so)
			}
		}
	}
}

var callerSaved = []isa.Reg{
	isa.RV, isa.A0, isa.A1, isa.A2, isa.A3, isa.A4, isa.A5,
	isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5, isa.T6, isa.T7,
	isa.AT, isa.RA,
}

// indirectCall interprets a jalr call site with abstract target t.
func (ip *interp) indirectCall(st *state, pc uint64, t cell) {
	switch {
	case t.v.isConst():
		ip.call(st, pc, uint64(t.v.lo), true)
		return
	case t.v.k == kSet:
		if ip.collecting {
			c := Call{PC: pc, Indirect: true, MustExec: ip.blockMust}
			for i := 0; i < numArgRegs; i++ {
				c.Args[i] = ip.argOf(st, st.read(isa.A0+isa.Reg(i)).v)
			}
			for _, target := range t.v.set {
				c.Target = target
				ip.fi.Calls = append(ip.fi.Calls, c)
			}
		}
		ip.clobberCall(st)
		return
	}
	if ip.collecting {
		ip.fi.UnresolvedJalr = append(ip.fi.UnresolvedJalr, pc)
		for i := 0; i < numArgRegs; i++ {
			v := st.read(isa.A0 + isa.Reg(i)).v
			if v.k == kSP {
				ip.escapeSP(v, "frame pointer passed at unresolved indirect call")
			} else if v.k == kParam {
				ip.paramEscape(v.param)
			}
		}
	}
	ip.clobberCall(st)
}

// finalize clips and merges collected intervals and resolves provisional
// markers into notes.
func (ip *interp) finalize() {
	fi := ip.fi
	var notes []string
	topAccess := false
	for _, n := range fi.Notes {
		switch {
		case len(n) > len(topAccessMarker) && n[:len(topAccessMarker)] == topAccessMarker:
			topAccess = true
		case len(n) > len(escapeMarker) && n[:len(escapeMarker)] == escapeMarker:
			fi.escapes = append(fi.escapes, n[len(escapeMarker):])
		default:
			notes = append(notes, n)
		}
	}
	fi.Notes = notes
	fi.topAccess = topAccess
	fi.Exact = len(notes) == 0 && fi.Exact

	// Clip frame accesses to the frame (the in-frame axiom): an
	// address-taken slot indexed by an unbounded expression still touches
	// at most its own slot, which ends at the frame edge.
	frame := fi.Frame
	var clipped []Interval
	for _, iv := range ip.touched {
		lo, hi := iv.Lo, iv.Hi
		if lo < -frame {
			lo = -frame
		}
		if hi > 0 {
			hi = 0
		}
		if hi > lo {
			// Shift to post-prologue frame offsets to match the footprint
			// extractor's convention.
			clipped = append(clipped, Interval{Lo: lo + frame, Hi: hi + frame})
		}
	}
	fi.Touched = MergeIntervals(clipped)
	for i := range ip.paramTouch {
		var ivs []Interval
		for _, iv := range ip.paramTouch[i] {
			lo, hi := iv.Lo, iv.Hi
			if lo == negInf || hi == posInf || hi-lo > maxParamSpan {
				// Unbounded pointer arithmetic: the slot axiom still bounds
				// the access to the pointed-to slot, whose extent the caller
				// clips; record a full-span marker.
				lo, hi = 0, maxParamSpan
			}
			if hi > lo {
				ivs = append(ivs, Interval{Lo: lo, Hi: hi})
			}
		}
		fi.ParamTouched[i] = MergeIntervals(ivs)
	}
}

// maxParamSpan caps how far a pointer-argument access may reach; the
// caller clips it to the pointed-to slot's real extent (ending at the frame
// edge) when composing footprints.
const maxParamSpan = int64(1) << 20
