package dataflow

import (
	"fmt"
	"sort"

	"biaslab/internal/isa"
	"biaslab/internal/linker"
)

// buildCFG decodes one function and partitions it into basic blocks with
// successor edges and postdominator-derived must-execute marks.
func buildCFG(exe *linker.Executable, fr *linker.FuncRange) (*FuncInfo, error) {
	fi := &FuncInfo{Name: fr.Name, Addr: fr.Addr, Size: fr.Size}
	start := fr.Addr - exe.TextBase
	end := start + fr.Size
	if fr.Addr < exe.TextBase || end > uint64(len(exe.Text)) || end < start {
		return nil, fmt.Errorf("dataflow: function %s extends past text", fr.Name)
	}
	n := int(fr.Size) / isa.InstSize
	if n == 0 {
		fi.Blocks = []*Block{{Start: fr.Addr, End: fr.Addr}}
		return fi, nil
	}

	// Leaders: function entry, every in-function transfer target, and every
	// instruction after a block-ending transfer.
	leader := make([]bool, n)
	leader[0] = true
	inFunc := func(pc uint64) (int, bool) {
		if pc < fr.Addr || pc >= fr.Addr+fr.Size || (pc-fr.Addr)%isa.InstSize != 0 {
			return 0, false
		}
		return int(pc-fr.Addr) / isa.InstSize, true
	}
	for i := 0; i < n; i++ {
		pc := fr.Addr + uint64(i*isa.InstSize)
		in := isa.DecodeBytes(exe.Text[start+uint64(i*isa.InstSize):])
		switch {
		case in.Op.IsBranch():
			target := uint64(int64(pc) + int64(isa.InstSize) + int64(in.Imm)*isa.InstSize)
			if ti, ok := inFunc(target); ok {
				leader[ti] = true
			}
			if i+1 < n {
				leader[i+1] = true
			}
		case in.Op == isa.OpJmp:
			target := uint64(int64(pc) + int64(isa.InstSize) + int64(in.Imm)*isa.InstSize)
			if ti, ok := inFunc(target); ok {
				leader[ti] = true
			}
			if i+1 < n {
				leader[i+1] = true
			}
		case in.Op == isa.OpJalr && in.Rd == isa.R0, in.Op == isa.OpHalt:
			// Return (or halt): ends the block; the next instruction, if
			// any, starts a new one.
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}

	// Blocks in address order.
	blockAt := map[uint64]int{}
	for i := 0; i < n; i++ {
		if leader[i] {
			b := &Block{Start: fr.Addr + uint64(i*isa.InstSize)}
			blockAt[b.Start] = len(fi.Blocks)
			fi.Blocks = append(fi.Blocks, b)
		}
	}
	for bi, b := range fi.Blocks {
		if bi+1 < len(fi.Blocks) {
			b.End = fi.Blocks[bi+1].Start
		} else {
			b.End = fr.Addr + fr.Size
		}
	}

	// Successor edges from each block's final instruction. Transfers that
	// leave the function (tail-jumps the code generator never emits, or
	// corrupt immediates met while fuzzing) become exits.
	for _, b := range fi.Blocks {
		if b.End == b.Start {
			continue
		}
		lastPC := b.End - uint64(isa.InstSize)
		in := isa.DecodeBytes(exe.Text[start+(lastPC-fr.Addr):])
		next := b.End
		addSucc := func(pc uint64) {
			if idx, ok := blockAt[pc]; ok {
				b.Succs = append(b.Succs, idx)
			}
		}
		switch {
		case in.Op.IsBranch():
			addSucc(uint64(int64(lastPC) + int64(isa.InstSize) + int64(in.Imm)*isa.InstSize))
			addSucc(next)
		case in.Op == isa.OpJmp:
			addSucc(uint64(int64(lastPC) + int64(isa.InstSize) + int64(in.Imm)*isa.InstSize))
		case in.Op == isa.OpJalr && in.Rd == isa.R0, in.Op == isa.OpHalt:
			// No successors: function exit.
		default:
			addSucc(next)
		}
	}

	markMustExec(fi)
	return fi, nil
}

// markMustExec sets Block.MustExec on blocks that postdominate the entry
// block: blocks every complete run of the function executes. Computed with
// the standard iterative intersection over the reverse CFG, with a virtual
// exit joining every block that has no successors.
func markMustExec(fi *FuncInfo) {
	n := len(fi.Blocks)
	if n == 0 {
		return
	}
	// reachable from entry, so unreachable padding blocks do not distort
	// the intersection.
	reach := make([]bool, n)
	var dfs func(int)
	dfs = func(i int) {
		if reach[i] {
			return
		}
		reach[i] = true
		for _, s := range fi.Blocks[i].Succs {
			dfs(s)
		}
	}
	dfs(0)

	const exit = -1
	// pdom[i] holds the current postdominator set of block i as a bitset.
	words := (n + 63) / 64
	full := make([]uint64, words)
	for i := 0; i < n; i++ {
		full[i/64] |= 1 << (i % 64)
	}
	pdom := make([][]uint64, n)
	for i := range pdom {
		pdom[i] = append([]uint64(nil), full...)
	}
	exits := []int{}
	for i, b := range fi.Blocks {
		if reach[i] && len(b.Succs) == 0 {
			exits = append(exits, i)
		}
	}
	if len(exits) == 0 {
		// No path to exit (decode garbage or an infinite loop): nothing can
		// be claimed must-execute beyond the entry block itself.
		fi.Blocks[0].MustExec = true
		return
	}
	_ = exit
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			if !reach[i] {
				continue
			}
			b := fi.Blocks[i]
			cur := make([]uint64, words)
			if len(b.Succs) == 0 {
				// Only itself.
			} else {
				for w := range cur {
					cur[w] = full[w]
				}
				for _, s := range b.Succs {
					for w := range cur {
						cur[w] &= pdom[s][w]
					}
				}
			}
			cur[i/64] |= 1 << (i % 64)
			for w := range cur {
				if cur[w] != pdom[i][w] {
					pdom[i] = cur
					changed = true
					break
				}
			}
		}
	}
	for i := range fi.Blocks {
		if reach[i] && pdom[0][i/64]&(1<<(i%64)) != 0 {
			fi.Blocks[i].MustExec = true
		}
	}
}

// blockOf returns the index of the block containing pc, or -1.
func (fi *FuncInfo) blockOf(pc uint64) int {
	i := sort.Search(len(fi.Blocks), func(i int) bool { return fi.Blocks[i].Start > pc })
	if i == 0 {
		return -1
	}
	b := fi.Blocks[i-1]
	if pc >= b.End {
		return -1
	}
	return i - 1
}
