// Package dataflow is an interprocedural abstract-interpretation framework
// over the linked text: basic-block CFGs with postdominators, a call graph
// with SCC condensation, and a constant-propagation / value-range lattice on
// registers and frame slots.
//
// The engine exists to answer layout questions the linear scans in
// internal/analysis cannot: which jalr sites go where, how deep a recursive
// SCC can nest, exactly which frame bytes an address-taken slot can reach,
// and which instructions execute on every run (the must-execute core that
// the per-channel bias predictors key on). Everything it proves is derived
// from the same code-generation discipline the rest of the repo relies on —
// SP is adjusted exactly twice per function, frame accesses carry static
// immediates, arguments travel in A0..A5 — plus one axiom the checksum
// oracle enforces dynamically: a well-defined program's frame accesses stay
// inside the frame of the function that owns the slot.
package dataflow

import (
	"fmt"
	"math"

	"biaslab/internal/linker"
)

// Interval is a half-open byte range [Lo, Hi).
type Interval struct {
	Lo, Hi int64
}

// Arg is the abstract value of one call-site argument.
type Arg struct {
	Kind ArgKind
	// Const is the value when Kind == ArgConst.
	Const int64
	// Param/Delta describe caller's parameter Param plus Delta when
	// Kind == ArgParam. ParamLo is the strongest lower bound on the
	// parameter proven to hold at the site (math.MinInt64 when none), and
	// ParamNe lists values the parameter provably cannot take there.
	Param   int
	Delta   int64
	ParamLo int64
	ParamNe []int64
	// SPOff is the frame offset (relative to the caller's entry SP, so
	// negative) when Kind == ArgSP: the argument is a pointer into the
	// caller's own frame.
	SPOff int64
}

// ArgKind classifies a call-site argument.
type ArgKind uint8

const (
	ArgUnknown ArgKind = iota
	ArgConst
	ArgParam
	ArgSP
)

// Call is one resolved call site.
type Call struct {
	PC       uint64
	Target   uint64
	Indirect bool // resolved jalr rather than jal
	MustExec bool // the site postdominates the function entry
	Args     [numArgRegs]Arg
}

// Transfer is one unconditional taken control transfer (jal or jmp), the
// sites whose target alignment the misaligned-entry penalty keys on.
type Transfer struct {
	PC       uint64
	Target   uint64
	MustExec bool
}

// Block is one basic block of a function CFG.
type Block struct {
	Start, End uint64 // pc range, half open
	Succs      []int  // indices into FuncInfo.Blocks
	// MustExec is set when the block postdominates the entry block: it
	// executes on every complete run of the function.
	MustExec bool
}

// FuncInfo is the per-function analysis result.
type FuncInfo struct {
	Name  string
	Addr  uint64
	Size  uint64
	Frame int64 // prologue allocation, 0 for frameless functions

	Blocks []*Block

	// Touched lists the frame byte intervals the function's own code can
	// touch, relative to the post-prologue SP, merged and sorted. Exact is
	// false when the interpreter met a construct it could not bound; Notes
	// says why.
	Touched []Interval
	Exact   bool
	Notes   []string

	// ParamTouched maps argument register index to the byte intervals the
	// function (or its callees) can touch relative to a pointer passed in
	// that register. Transitively closed over the call graph.
	ParamTouched [numArgRegs][]Interval

	// Calls lists resolved call sites: every jal, plus each jalr whose
	// target set the engine proved. A jalr resolving to several targets
	// yields one Call per target with the same PC.
	Calls []Call
	// UnresolvedJalr lists jalr call sites whose targets remain unknown.
	UnresolvedJalr []uint64

	// Transfers lists unconditional taken transfers (jal/jmp);
	// CondBranches lists conditional-branch sites. Both feed the layout
	// channel signatures.
	Transfers    []Transfer
	CondBranches []uint64

	// topAccess marks a memory access through an untyped pointer; escapes
	// lists ways a frame pointer left the frame discipline. Analyze couples
	// the two: an untyped access only threatens frame exactness if a frame
	// pointer escaped somewhere in the program. paramEsc marks parameters
	// the function publishes to memory (or returns): storing an integer is
	// harmless, so these become escapes only where a caller actually passes
	// a frame pointer in that position.
	topAccess bool
	escapes   []string
	paramEsc  [numArgRegs]bool
}

const numArgRegs = 6

// Info is the whole-program analysis result.
type Info struct {
	Funcs map[uint64]*FuncInfo
	// Order lists function entry addresses in ascending order.
	Order []uint64

	// SCC condensation of the call graph: SCCID maps a function to its
	// component, Recursive marks components containing a cycle, and Bounds
	// holds, for each recursive component where the engine proved a
	// decreasing-parameter induction, the maximum number of component
	// frames simultaneously live on any call path.
	SCCID     map[uint64]int
	Recursive map[int]bool
	Bounds    map[int]int64

	// Reachable marks functions reachable from the entry point through
	// resolved calls. When any reachable function retains an unresolved
	// jalr, every function is conservatively reachable and
	// AllReachable is set.
	Reachable    map[uint64]bool
	AllReachable bool

	// MustExec marks functions that execute on every complete run: the
	// entry function plus the closure over must-execute call sites.
	MustExec map[uint64]bool
}

// Analyze runs the engine over a linked executable.
func Analyze(exe *linker.Executable) (*Info, error) {
	if len(exe.Funcs) == 0 {
		return nil, fmt.Errorf("dataflow: executable has no function symbols")
	}
	info := &Info{
		Funcs:     map[uint64]*FuncInfo{},
		SCCID:     map[uint64]int{},
		Recursive: map[int]bool{},
		Bounds:    map[int]int64{},
		Reachable: map[uint64]bool{},
		MustExec:  map[uint64]bool{},
	}
	for i := range exe.Funcs {
		fr := &exe.Funcs[i]
		fi, err := buildCFG(exe, fr)
		if err != nil {
			return nil, err
		}
		info.Funcs[fi.Addr] = fi
		info.Order = append(info.Order, fi.Addr)
	}

	// First interpretation pass: optimistic about loads from initialized
	// data (needed to see through jalr tables). If any store may alias a
	// datum such a load read, re-run with data loads degraded to Top.
	gs := &globalStores{}
	for _, addr := range info.Order {
		interpFunc(exe, info.Funcs[addr], gs, true)
	}
	if gs.conflicts() {
		gs2 := &globalStores{}
		for _, addr := range info.Order {
			fi := info.Funcs[addr]
			fi.reset()
			interpFunc(exe, fi, gs2, false)
		}
	}

	resolveJalr(exe, info)

	// Propagate conditional escapes: callee publishes parameter j, caller
	// passes a frame pointer (real escape) or forwards its own parameter
	// (the condition propagates up one level).
	for changed := true; changed; {
		changed = false
		for _, fi := range info.Funcs {
			for _, c := range fi.Calls {
				callee := info.Funcs[c.Target]
				if callee == nil {
					continue
				}
				for j := 0; j < numArgRegs; j++ {
					if !callee.paramEsc[j] {
						continue
					}
					switch c.Args[j].Kind {
					case ArgSP:
						e := fmt.Sprintf("frame pointer passed to %s escapes there", callee.Name)
						if !containsStr(fi.escapes, e) {
							fi.escapes = append(fi.escapes, e)
							changed = true
						}
					case ArgParam:
						if p := c.Args[j].Param; p < numArgRegs && !fi.paramEsc[p] {
							fi.paramEsc[p] = true
							changed = true
						}
					}
				}
			}
		}
	}

	// Resolve the escape/untyped-access coupling: if no frame pointer ever
	// escapes the frame discipline, an access through an untyped pointer
	// cannot reach any frame and costs nothing; otherwise both the escaping
	// function and every untyped access lose exactness.
	programEscapes := false
	for _, fi := range info.Funcs {
		if len(fi.escapes) > 0 {
			programEscapes = true
			break
		}
	}
	if programEscapes {
		for _, fi := range info.Funcs {
			for _, e := range fi.escapes {
				fi.note("%s", e)
			}
			if fi.topAccess {
				fi.note("memory access through untyped pointer (a frame pointer escapes)")
			}
		}
	}

	buildCallGraph(info)
	closeParamTouched(info)
	markReachable(exe, info)
	boundRecursion(info)
	return info, nil
}

// reset clears interpretation results so a function can be re-analyzed.
func (fi *FuncInfo) reset() {
	fi.Touched, fi.Exact, fi.Notes = nil, false, nil
	fi.ParamTouched = [numArgRegs][]Interval{}
	fi.Calls, fi.UnresolvedJalr = nil, nil
	fi.Transfers, fi.CondBranches = nil, nil
	fi.topAccess, fi.escapes = false, nil
	fi.paramEsc = [numArgRegs]bool{}
}

// note records an inexactness reason.
func (fi *FuncInfo) note(format string, args ...any) {
	fi.Exact = false
	s := fmt.Sprintf(format, args...)
	for _, n := range fi.Notes {
		if n == s {
			return
		}
	}
	fi.Notes = append(fi.Notes, s)
}

// MergeIntervals sorts and coalesces overlapping or adjacent intervals.
func MergeIntervals(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([]Interval(nil), ivs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Lo < sorted[j-1].Lo; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := sorted[:1]
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// MaxParamSpan is the span of the full-range ParamTouched marker. An entry
// reaching this width records unbounded pointer arithmetic: the callee may
// touch any offset of the pointed-to object, and whoever composes footprints
// must clip the interval to the object's real extent.
const MaxParamSpan = maxParamSpan

const (
	negInf = math.MinInt64
	posInf = math.MaxInt64
)

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
