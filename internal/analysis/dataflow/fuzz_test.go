package dataflow_test

import (
	"testing"
	"time"

	"biaslab/internal/analysis/dataflow"
	"biaslab/internal/compiler"
	"biaslab/internal/isa"
	"biaslab/internal/linker"
)

// fuzzSeedText compiles a small cmini program and returns the text and data
// segments of its linked image, giving the fuzzer structurally valid
// instruction streams to mutate from.
func fuzzSeedText(f *testing.F, src string) ([]byte, []byte) {
	f.Helper()
	objs, _, err := compiler.Compile([]compiler.Source{{Name: "seed", Text: src}}, compiler.Config{Level: compiler.O2})
	if err != nil {
		f.Fatal(err)
	}
	exe, err := linker.Link(objs, linker.Options{})
	if err != nil {
		f.Fatal(err)
	}
	return exe.Text, exe.Data
}

// FuzzAnalyze drives the CFG builder, abstract interpreter, jalr resolver
// and recursion bounder with arbitrary machine code. The property under
// test is freedom from panics and runaway behavior: for any executable that
// satisfies the linker's structural invariants (functions sorted, disjoint,
// inside the text segment), Analyze must either return an Info or an error
// value — whatever bytes the functions contain. Returned results must also
// satisfy the engine's own postconditions: Touched intervals sorted and
// disjoint, every function classified into an SCC.
func FuzzAnalyze(f *testing.F) {
	// Structured seeds: real compiler output, including recursion (the
	// bounder's hard case) and deliberately hostile control flow.
	for _, src := range []string{
		"void main() { checksum(7); }",
		`int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
		 void main() { checksum(fact(10)); }`,
		`int spin(int n) { int i; int s; s = 0;
		 for (i = 0; i < n; i++) { s = s + i; } return s; }
		 void main() { checksum(spin(100)); }`,
	} {
		text, data := fuzzSeedText(f, src)
		f.Add(text, data, uint16(0))
	}

	// A hand-built seed with the shapes compiled code never emits: an
	// indirect call through a register, a backward branch to pc 0, and a
	// store through an unknown pointer.
	var hand []byte
	for _, in := range []isa.Inst{
		{Op: isa.OpAddi, Rd: isa.SP, Rs1: isa.SP, Imm: -32},
		{Op: isa.OpAddi, Rd: isa.A0, Rs1: isa.R0, Imm: isa.SysCycles},
		{Op: isa.OpSys, Rs1: isa.A0},
		{Op: isa.OpStq, Rs1: isa.RV, Rs2: isa.RA, Imm: 0},
		{Op: isa.OpJalr, Rd: isa.RA, Rs1: isa.RV},
		{Op: isa.OpBeq, Rs1: isa.RV, Rs2: isa.R0, Imm: -6},
		{Op: isa.OpAddi, Rd: isa.SP, Rs1: isa.SP, Imm: 32},
		{Op: isa.OpJalr, Rd: isa.R0, Rs1: isa.RA},
	} {
		hand = isa.EncodeTo(hand, in)
	}
	f.Add(hand, []byte{0, 0, 0, 0, 0, 0, 0, 0}, uint16(16))

	// Degenerate seeds: no valid instruction anywhere, and a single word.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, []byte(nil), uint16(0))
	f.Add([]byte{0, 0, 0, 0}, []byte(nil), uint16(0))

	f.Fuzz(func(t *testing.T, text, data []byte, split uint16) {
		// The interpreter's work budget scales with block count and its
		// per-visit cost with state size, so giant adversarial inputs are
		// slow rather than wrong; cap the text to keep every exec fast.
		if len(text) > 1<<11 || len(data) > 1<<9 {
			t.Skip("oversized input")
		}
		n := len(text) / 4 * 4
		if n == 0 {
			return
		}
		text = text[:n]

		// Assemble an executable obeying the invariants the linker
		// guarantees: split the text into one or two functions at an
		// instruction-aligned cut chosen by the fuzzer.
		const textBase = 0x100000
		cut := uint64(split) % uint64(n) / 4 * 4
		funcs := []linker.FuncRange{{Name: "main", Addr: textBase, Size: uint64(n)}}
		if cut != 0 {
			funcs = []linker.FuncRange{
				{Name: "main", Addr: textBase, Size: cut},
				{Name: "aux", Addr: textBase + cut, Size: uint64(n) - cut},
			}
		}
		syms := map[string]uint64{}
		for _, fr := range funcs {
			syms[fr.Name] = fr.Addr
		}
		dataBase := (textBase + uint64(n) + 7) &^ 7
		exe := &linker.Executable{
			Entry:    textBase,
			TextBase: textBase,
			Text:     text,
			DataBase: dataBase,
			Data:     data,
			BSSBase:  dataBase + uint64(len(data)),
			BSSSize:  64,
			Symbols:  syms,
			Funcs:    funcs,
		}

		t0 := time.Now()
		info, err := dataflow.Analyze(exe)
		if d := time.Since(t0); d > 2*time.Second {
			t.Fatalf("slow input: Analyze took %v", d)
		}
		if err != nil {
			return
		}
		for _, fr := range funcs {
			fi := info.Funcs[fr.Addr]
			if fi == nil {
				t.Fatalf("no FuncInfo for %s", fr.Name)
			}
			if _, ok := info.SCCID[fr.Addr]; !ok {
				t.Fatalf("%s not assigned an SCC", fr.Name)
			}
			for i := 1; i < len(fi.Touched); i++ {
				if fi.Touched[i].Lo < fi.Touched[i-1].Hi {
					t.Fatalf("%s: Touched intervals overlap or unsorted: %v", fr.Name, fi.Touched)
				}
			}
			for _, c := range fi.Calls {
				if c.PC < fr.Addr || c.PC >= fr.Addr+fr.Size {
					t.Fatalf("%s: call site %#x outside function", fr.Name, c.PC)
				}
			}
		}
	})
}
