package audit

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"biaslab/internal/server"
	"biaslab/internal/spec"
)

// Spec files are JSON with `//` line comments, because suppressions live
// in comments: a directive line
//
//	//audit:allow single-setup
//
// anywhere in the file suppresses that rule for every spec in the file —
// still reported, no longer gating — exactly like determlint's
// //determlint:allow. A file holds one JobSpec, an array of JobSpecs
// (audited together, so the cross-spec rules see the whole comparison), or
// a stored Result envelope (audited with the result-level rules too).

// allowPrefix introduces a suppression directive in a spec file.
const allowPrefix = "//audit:allow"

// LoadFile reads a spec file into audit inputs.
func LoadFile(path string) ([]Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseFile(path, raw)
}

// ParseFile parses spec-file bytes: strips comments, collects
// //audit:allow directives, and detects the payload shape.
func ParseFile(path string, raw []byte) ([]Spec, error) {
	stripped, allow, err := stripComments(path, raw)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(stripped))
	if trimmed == "" {
		return nil, fmt.Errorf("audit: %s: empty spec file", path)
	}

	if strings.HasPrefix(trimmed, "[") {
		var specs []server.JobSpec
		if err := json.Unmarshal([]byte(trimmed), &specs); err != nil {
			return nil, fmt.Errorf("audit: %s: %w", path, err)
		}
		ins := make([]Spec, len(specs))
		for i, s := range specs {
			ins[i] = Spec{File: fmt.Sprintf("%s[%d]", path, i), Spec: s, Allow: allow}
		}
		return ins, nil
	}

	// A declarative bias-on-demand file compiles into jobs; each compiled
	// job is audited as its own spec, so the whole comparison the file
	// describes is judged together (cross-spec rules included). The file's
	// audit_allow field is already stamped onto every compiled job by the
	// compiler; //audit:allow directives are honored here like anywhere
	// else.
	if spec.IsDeclarative([]byte(trimmed)) {
		f, err := spec.Parse([]byte(trimmed))
		if err != nil {
			return nil, fmt.Errorf("audit: %s: %w", path, err)
		}
		jobs, err := f.Compile()
		if err != nil {
			return nil, fmt.Errorf("audit: %s: %w", path, err)
		}
		ins := make([]Spec, len(jobs))
		for i, job := range jobs {
			ins[i] = Spec{File: fmt.Sprintf("%s[%d]", path, i), Spec: job, Allow: allow}
		}
		return ins, nil
	}

	// A Result envelope carries a payload alongside its spec; a bare spec
	// does not. Sniff for the discriminating payload keys.
	var probe struct {
		Run        json.RawMessage `json:"run"`
		EnvSweep   json.RawMessage `json:"env_sweep"`
		LinkSweep  json.RawMessage `json:"link_sweep"`
		Randomize  json.RawMessage `json:"randomize"`
		Experiment json.RawMessage `json:"experiment"`
	}
	if err := json.Unmarshal([]byte(trimmed), &probe); err != nil {
		return nil, fmt.Errorf("audit: %s: %w", path, err)
	}
	if probe.Run != nil || probe.EnvSweep != nil || probe.LinkSweep != nil ||
		probe.Randomize != nil || probe.Experiment != nil {
		res, err := server.DecodeResult([]byte(trimmed))
		if err != nil {
			return nil, fmt.Errorf("audit: %s: %w", path, err)
		}
		return []Spec{{File: path, Spec: res.Spec, Allow: allow, Result: res}}, nil
	}

	var spec server.JobSpec
	if err := json.Unmarshal([]byte(trimmed), &spec); err != nil {
		return nil, fmt.Errorf("audit: %s: %w", path, err)
	}
	return []Spec{{File: path, Spec: spec, Allow: allow}}, nil
}

// stripComments removes `//` line comments (whole-line only, so string
// values containing slashes survive) and returns the allow directives it
// found.
func stripComments(path string, raw []byte) ([]byte, []string, error) {
	var out strings.Builder
	var allow []string
	for _, line := range strings.Split(string(raw), "\n") {
		t := strings.TrimSpace(line)
		if strings.HasPrefix(t, allowPrefix) {
			rule := strings.TrimSpace(strings.TrimPrefix(t, allowPrefix))
			if rule == "" {
				return nil, nil, fmt.Errorf("audit: %s: %s needs a rule id", path, allowPrefix)
			}
			if !KnownRule(rule) {
				return nil, nil, fmt.Errorf("audit: %s: %s %s: unknown rule (known: %s)",
					path, allowPrefix, rule, strings.Join(Rules(), ", "))
			}
			allow = append(allow, rule)
			continue
		}
		if strings.HasPrefix(t, "//") {
			continue
		}
		out.WriteString(line)
		out.WriteString("\n")
	}
	return []byte(out.String()), allow, nil
}
