package audit_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"biaslab/internal/audit"
	"biaslab/internal/bench"
	"biaslab/internal/core"
	"biaslab/internal/server"
	"biaslab/internal/stats"
)

// One shared Runner across every test: the oracle-backed rules compile and
// link through its caches, so the fleet of table cases costs two compiles,
// not two per case.
var (
	runnerOnce sync.Once
	runner     *core.Runner
)

func testAuditor() *audit.Auditor {
	return audit.New(func(size bench.Size) *core.Runner {
		runnerOnce.Do(func() { runner = core.NewRunner(bench.SizeTest) })
		if size != bench.SizeTest {
			panic("audit tests only use the test workload size")
		}
		return runner
	})
}

// findRule returns the findings carrying the rule id.
func findRule(fs []audit.Finding, rule string) []audit.Finding {
	var out []audit.Finding
	for _, f := range fs {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

// TestRuleTable is the catalog acceptance test: one guilty and one
// innocent spec per single-spec rule.
func TestRuleTable(t *testing.T) {
	a := testAuditor()
	cases := []struct {
		name     string
		spec     server.JobSpec
		rule     string
		guilty   bool
		severity server.AuditSeverity
	}{
		{
			name:     "single-setup guilty",
			spec:     server.JobSpec{Kind: "randomize", Bench: "hmmer", Size: "test", N: 1},
			rule:     audit.RuleSingleSetup,
			guilty:   true,
			severity: server.AuditError,
		},
		{
			name:   "single-setup innocent",
			spec:   server.JobSpec{Kind: "randomize", Bench: "hmmer", Size: "test", N: 16},
			rule:   audit.RuleSingleSetup,
			guilty: false,
		},
		{
			name:     "insufficient-setups guilty",
			spec:     server.JobSpec{Kind: "randomize", Bench: "hmmer", Size: "test", N: 4},
			rule:     audit.RuleFewSetups,
			guilty:   true,
			severity: server.AuditError,
		},
		{
			name:   "insufficient-setups innocent at threshold",
			spec:   server.JobSpec{Kind: "randomize", Bench: "hmmer", Size: "test", N: audit.MinSetups()},
			rule:   audit.RuleFewSetups,
			guilty: false,
		},
		{
			name:     "insufficient-setups adaptive cap is a warn",
			spec:     server.JobSpec{Kind: "randomize", Bench: "hmmer", Size: "test", N: 4, Tol: 0.01},
			rule:     audit.RuleFewSetups,
			guilty:   true,
			severity: server.AuditWarn,
		},
		{
			name:     "coarse-env-grid guilty at default step",
			spec:     server.JobSpec{Kind: "sweep-env", Bench: "hmmer", Size: "test", Step: 512},
			rule:     audit.RuleCoarseGrid,
			guilty:   true,
			severity: server.AuditWarn,
		},
		{
			name:   "coarse-env-grid innocent at slot resolution",
			spec:   server.JobSpec{Kind: "sweep-env", Bench: "hmmer", Size: "test", Step: 8},
			rule:   audit.RuleCoarseGrid,
			guilty: false,
		},
		{
			name:   "coarse-env-grid innocent when adaptive",
			spec:   server.JobSpec{Kind: "sweep-env", Bench: "hmmer", Size: "test", Step: 512, Adaptive: true},
			rule:   audit.RuleCoarseGrid,
			guilty: false,
		},
		{
			name:     "unrandomized-sensitive guilty run",
			spec:     server.JobSpec{Kind: "run", Bench: "hmmer", Size: "test", EnvBytes: 512},
			rule:     audit.RuleUnrandomized,
			guilty:   true,
			severity: server.AuditWarn,
		},
		{
			name:   "unrandomized-sensitive innocent randomize",
			spec:   server.JobSpec{Kind: "randomize", Bench: "hmmer", Size: "test", N: 16},
			rule:   audit.RuleUnrandomized,
			guilty: false,
		},
		{
			name:     "fixed-corunner-sensitive guilty pinned tenant",
			spec:     server.JobSpec{Kind: "randomize", Bench: "sjeng", Machine: "core2", Size: "test", N: 16, CoBench: "sjeng"},
			rule:     audit.RuleFixedCoRunner,
			guilty:   true,
			severity: server.AuditError,
		},
		{
			name:   "fixed-corunner-sensitive innocent randomized tenant",
			spec:   server.JobSpec{Kind: "randomize", Bench: "sjeng", Machine: "core2", Size: "test", N: 16, CoRandom: true},
			rule:   audit.RuleFixedCoRunner,
			guilty: false,
		},
		{
			name:   "fixed-corunner-sensitive innocent idle randomize",
			spec:   server.JobSpec{Kind: "randomize", Bench: "sjeng", Machine: "core2", Size: "test", N: 16},
			rule:   audit.RuleFixedCoRunner,
			guilty: false,
		},
		{
			name:     "idle-machine-only guilty serving context without interference",
			spec:     server.JobSpec{Kind: "randomize", Bench: "hmmer", Size: "test", N: 16, Context: "serving"},
			rule:     audit.RuleIdleMachine,
			guilty:   true,
			severity: server.AuditWarn,
		},
		{
			name:   "idle-machine-only innocent randomized tenant",
			spec:   server.JobSpec{Kind: "randomize", Bench: "hmmer", Size: "test", N: 16, CoRandom: true, Context: "serving"},
			rule:   audit.RuleIdleMachine,
			guilty: false,
		},
		{
			name:   "idle-machine-only innocent tenant sweep",
			spec:   server.JobSpec{Kind: "sweep-tenant", Bench: "hmmer", Size: "test", Context: "serving"},
			rule:   audit.RuleIdleMachine,
			guilty: false,
		},
		{
			name:   "idle-machine-only innocent without context claim",
			spec:   server.JobSpec{Kind: "randomize", Bench: "hmmer", Size: "test", N: 16},
			rule:   audit.RuleIdleMachine,
			guilty: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, err := a.AuditSpec(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			hits := findRule(fs, tc.rule)
			if tc.guilty {
				if len(hits) != 1 {
					t.Fatalf("want 1 %s finding, got %d (all: %v)", tc.rule, len(hits), fs)
				}
				if hits[0].Severity != tc.severity {
					t.Errorf("severity = %s, want %s", hits[0].Severity, tc.severity)
				}
				if hits[0].Suppressed {
					t.Error("finding unexpectedly suppressed")
				}
			} else if len(hits) != 0 {
				t.Fatalf("want no %s finding, got %v", tc.rule, hits)
			}
		})
	}
}

// TestSingleSetupSubsumesFewSetups: n=1 is charged as single-setup only,
// not double-flagged.
func TestSingleSetupSubsumesFewSetups(t *testing.T) {
	fs, err := testAuditor().AuditSpec(server.JobSpec{Kind: "randomize", Bench: "hmmer", Size: "test", N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := findRule(fs, audit.RuleFewSetups); len(got) != 0 {
		t.Errorf("n=1 also flagged %s: %v", audit.RuleFewSetups, got)
	}
	if got := findRule(fs, audit.RuleSingleSetup); len(got) != 1 {
		t.Errorf("n=1 not flagged %s: %v", audit.RuleSingleSetup, fs)
	}
}

// TestMinSetupsGrounding pins the derived threshold: the constant the
// findings cite must be what stats.MinSamples computes, and the paper-sized
// defaults must be innocent.
func TestMinSetupsGrounding(t *testing.T) {
	want := stats.MinSamples(audit.SigmaSetup, audit.TargetHalfWidth, audit.Level)
	if got := audit.MinSetups(); got != want {
		t.Fatalf("MinSetups() = %d, want %d", got, want)
	}
	if audit.MinSetups() > 16 {
		t.Fatalf("MinSetups() = %d exceeds the default randomize n=16: the defaults would audit guilty", audit.MinSetups())
	}
	if audit.MinSetups() < 2 {
		t.Fatalf("MinSetups() = %d is degenerate", audit.MinSetups())
	}
}

// TestSuppression: an audit_allow field keeps the finding visible but
// non-gating, and unknown rules in a file directive are rejected at parse.
func TestSuppression(t *testing.T) {
	a := testAuditor()
	fs, err := a.AuditSpec(server.JobSpec{
		Kind: "randomize", Bench: "hmmer", Size: "test", N: 1,
		AuditAllow: []string{audit.RuleSingleSetup},
	})
	if err != nil {
		t.Fatal(err)
	}
	hits := findRule(fs, audit.RuleSingleSetup)
	if len(hits) != 1 {
		t.Fatalf("suppressed finding not reported: %v", fs)
	}
	if !hits[0].Suppressed {
		t.Error("finding not marked suppressed")
	}
	if hits[0].Gating() {
		t.Error("suppressed finding still gating")
	}
}

// TestIncommensurableMachines: pooling randomize estimates across
// different cache geometries is flagged; same machine, or sweeps across
// machines (legitimate bias studies), are not.
func TestIncommensurableMachines(t *testing.T) {
	a := testAuditor()
	rand := func(m string) audit.Spec {
		return audit.Spec{Spec: server.JobSpec{Kind: "randomize", Bench: "hmmer", Size: "test", N: 16, Machine: m}}
	}
	sweep := func(m string) audit.Spec {
		return audit.Spec{Spec: server.JobSpec{Kind: "sweep-env", Bench: "hmmer", Size: "test", Step: 8, Machine: m}}
	}

	rep, err := a.AuditSet([]audit.Spec{rand("p4"), rand("core2")})
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, e := range rep.Findings {
		if e.Finding.Rule == audit.RuleIncommensurable {
			hit = true
			if e.Finding.Severity != server.AuditError {
				t.Errorf("severity = %s, want error", e.Finding.Severity)
			}
		}
	}
	if !hit {
		t.Fatalf("p4-vs-core2 randomize pool not flagged: %s", rep)
	}
	if rep.OK {
		t.Error("report verdict ok despite gating finding")
	}

	rep, err = a.AuditSet([]audit.Spec{rand("core2"), rand("core2")})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Findings {
		if e.Finding.Rule == audit.RuleIncommensurable {
			t.Fatalf("same-machine pool flagged: %v", e)
		}
	}

	rep, err = a.AuditSet([]audit.Spec{sweep("p4"), sweep("core2")})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Findings {
		if e.Finding.Rule == audit.RuleIncommensurable {
			t.Fatalf("cross-machine sweep comparison flagged (it is a legitimate bias study): %v", e)
		}
	}
}

// TestInconclusiveInterval: the result-level rule fires on a stored
// randomize result whose interval spans 1.0, and not on a conclusive one.
func TestInconclusiveInterval(t *testing.T) {
	a := testAuditor()
	mk := func(conclusive bool) *server.Result {
		return &server.Result{
			Kind: server.KindRandomize,
			Spec: server.JobSpec{Kind: "randomize", Bench: "hmmer", Size: "test", N: 16},
			Randomize: &server.RandomizeResult{
				Estimate: core.RobustEstimate{
					TInterval: stats.Interval{Lo: 0.995, Hi: 1.012, Level: 0.95},
				},
				Conclusive: conclusive,
			},
		}
	}
	fs, err := a.AuditResult(mk(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := findRule(fs, audit.RuleInconclusive); len(got) != 1 || got[0].Severity != server.AuditError {
		t.Fatalf("inconclusive result not charged: %v", fs)
	}
	fs, err = a.AuditResult(mk(true), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := findRule(fs, audit.RuleInconclusive); len(got) != 0 {
		t.Fatalf("conclusive result charged: %v", got)
	}
}

// TestSpecFileParsing covers the file format: comment stripping, the
// three payload shapes, and //audit:allow directives.
func TestSpecFileParsing(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("single spec with comments and allow", func(t *testing.T) {
		p := write("one.json", `// a deliberately guilty spec, kept as a suppression demo
//audit:allow single-setup
{"kind": "randomize", "bench": "hmmer", "size": "test", "n": 1}
`)
		ins, err := audit.LoadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(ins) != 1 || len(ins[0].Allow) != 1 || ins[0].Allow[0] != audit.RuleSingleSetup {
			t.Fatalf("parsed %+v", ins)
		}
		fs, err := testAuditor().AuditSpec(ins[0].Spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(findRule(fs, audit.RuleSingleSetup)) != 1 {
			t.Fatalf("guilty spec not flagged: %v", fs)
		}
		rep, err := testAuditor().AuditSet(ins)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK || rep.Suppressed != 1 {
			t.Fatalf("file-level allow not applied: %s", rep)
		}
	})

	t.Run("array", func(t *testing.T) {
		p := write("many.json", `[
  {"kind": "randomize", "bench": "hmmer", "size": "test", "n": 16},
  {"kind": "randomize", "bench": "hmmer", "size": "test", "n": 16, "machine": "p4"}
]
`)
		ins, err := audit.LoadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(ins) != 2 {
			t.Fatalf("want 2 specs, got %d", len(ins))
		}
		if !strings.HasSuffix(ins[1].File, "[1]") {
			t.Errorf("array subject = %q", ins[1].File)
		}
	})

	t.Run("result envelope", func(t *testing.T) {
		p := write("result.json", `{
  "kind": "randomize",
  "spec": {"kind": "randomize", "bench": "hmmer", "size": "test", "n": 16},
  "randomize": {"estimate": {"TInterval": {"Lo": 0.99, "Hi": 1.01, "Level": 0.95}}, "conclusive": false}
}
`)
		ins, err := audit.LoadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(ins) != 1 || ins[0].Result == nil {
			t.Fatalf("result payload not detected: %+v", ins)
		}
		rep, err := testAuditor().AuditSet(ins)
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK {
			t.Fatalf("inconclusive stored result audited ok: %s", rep)
		}
	})

	t.Run("unknown allow rule rejected", func(t *testing.T) {
		p := write("bad.json", "//audit:allow not-a-rule\n{}\n")
		if _, err := audit.LoadFile(p); err == nil || !strings.Contains(err.Error(), "unknown rule") {
			t.Fatalf("err = %v", err)
		}
	})
}

// TestAuditVsExecution is the consistency gate between the static auditor
// and the execution path: a spec that audits clean executes to a
// confidence-interval-bearing report, and a guilty-but-suppressed spec
// still runs — suppression is judgment metadata, not a behavior change.
func TestAuditVsExecution(t *testing.T) {
	if testing.Short() {
		t.Skip("executes randomize measurements")
	}
	a := testAuditor()
	ctx := context.Background()

	clean := server.JobSpec{Kind: "randomize", Bench: "libquantum", Size: "test", N: audit.MinSetups()}
	fs, err := a.AuditSpec(clean)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.Gating() {
			t.Fatalf("clean spec gated: %v", f)
		}
	}
	canonical, err := clean.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := server.Execute(ctx, runner, canonical, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	est := res.Randomize.Estimate
	if est.HierCI.Level != 0.95 || est.HierCI.Lo == 0 || est.N != audit.MinSetups() {
		t.Fatalf("clean spec did not produce a CI-bearing estimate: %+v", est)
	}
	if est.Test.Verdict == "" {
		t.Fatalf("estimate missing speedup-test verdict: %+v", est.Test)
	}

	guilty := server.JobSpec{
		Kind: "randomize", Bench: "libquantum", Size: "test", N: 1,
		AuditAllow: []string{audit.RuleSingleSetup},
	}
	fs, err = a.AuditSpec(guilty)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.Gating() {
			t.Fatalf("suppressed spec still gated: %v", f)
		}
	}
	canonical, err = guilty.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(canonical.AuditAllow) != 0 {
		t.Fatalf("Canonicalize kept audit_allow (would perturb content keys): %+v", canonical)
	}
	res, err = server.Execute(ctx, runner, canonical, nil, nil)
	if err != nil {
		t.Fatalf("suppressed guilty spec refused to run: %v", err)
	}
	if res.Randomize == nil || res.Randomize.Estimate.N != 1 {
		t.Fatalf("suppressed guilty spec result malformed: %+v", res.Randomize)
	}
}

// TestReportRendering pins the report's text shape.
func TestReportRendering(t *testing.T) {
	a := testAuditor()
	rep, err := a.AuditSet([]audit.Spec{
		{File: "g.json", Spec: server.JobSpec{Kind: "randomize", Bench: "hmmer", Size: "test", N: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if !strings.Contains(out, "g.json: error single-setup:") {
		t.Errorf("missing finding line:\n%s", out)
	}
	if !strings.Contains(out, "FAIL (1 gating)") {
		t.Errorf("missing verdict:\n%s", out)
	}
}
