// Package audit is the benchmarking-crimes auditor: a static rule engine
// that analyzes experiment specs — the exact canonicalized server.JobSpec
// the CLI, daemon and cluster all execute — and flags methodology crimes
// before a single cycle is spent, in the spirit of van der Kouwe et al.'s
// "Benchmarking Crimes" checklists and with thresholds grounded in
// internal/stats rather than taste.
//
// The rules encode the paper's findings as checkable predicates:
//
//	single-setup              a speedup "measured" at one setup (n=1) —
//	                          the paper's titular crime: the setup's bias
//	                          is unknowable and often exceeds the effect.
//	insufficient-setups       n too small for the target CI half-width at
//	                          the prior setup-variance (stats.MinSamples).
//	coarse-env-grid           a sweep grid whose step skips oracle-predicted
//	                          transition plateaus (analysis.PlanEnvSweep):
//	                          the sweep cannot see structure it steps over.
//	unrandomized-sensitive    a fixed-setup run of a benchmark the bias
//	                          oracle predicts is env-sensitive; the number
//	                          depends on an unreported setup choice.
//	unrandomized-sensitive-pad / -base
//	                          the same crime through a code-placement
//	                          channel: the dataflow comparator *proves* the
//	                          benchmark's cycles move under inter-object
//	                          text padding (pad) or an image-base
//	                          displacement (base), so a fixed-layout run
//	                          reports one arbitrary point of that swing.
//	incommensurable-machines  one conclusion pooled across machines with
//	                          different cache/TLB geometries.
//	fixed-corunner-sensitive  a randomized estimate measured entirely under
//	                          one pinned co-runner: every setup shares that
//	                          tenant's interference, so the estimate is
//	                          conditional on an unreported tenancy choice —
//	                          the measured co-runner swing flips O2-vs-O3
//	                          verdicts (EXPERIMENTS.md, E10).
//	idle-machine-only         a spec that declares a shared deployment
//	                          context ("serving") but measures only on an
//	                          idle machine — no co-runner fixed, randomized
//	                          or swept.
//	inconclusive-interval     a direction claimed from a result whose
//	                          confidence interval spans no effect.
//
// Severity error gates (CLI exit 1, daemon ?strict=1 rejection); warn
// informs. Findings are suppressed — reported but not gating — by an
// `//audit:allow <rule>` directive in the spec file or the spec's
// audit_allow field; suppressions are judgment metadata and never change
// the spec's content key.
package audit

import (
	"fmt"
	"sort"

	"biaslab/internal/analysis"
	"biaslab/internal/bench"
	"biaslab/internal/core"
	"biaslab/internal/linker"
	"biaslab/internal/machine"
	"biaslab/internal/server"
	"biaslab/internal/stats"
)

// Rule ids, stable across releases: suppressions and CI greps depend on
// them.
const (
	RuleSingleSetup      = "single-setup"
	RuleFewSetups        = "insufficient-setups"
	RuleCoarseGrid       = "coarse-env-grid"
	RuleUnrandomized     = "unrandomized-sensitive"
	RuleUnrandomizedPad  = "unrandomized-sensitive-pad"
	RuleUnrandomizedBase = "unrandomized-sensitive-base"
	RuleIncommensurable  = "incommensurable-machines"
	RuleFixedCoRunner    = "fixed-corunner-sensitive"
	RuleIdleMachine      = "idle-machine-only"
	RuleInconclusive     = "inconclusive-interval"
)

// Rules lists every rule id in catalog order.
func Rules() []string {
	return []string{
		RuleSingleSetup, RuleFewSetups, RuleCoarseGrid,
		RuleUnrandomized, RuleUnrandomizedPad, RuleUnrandomizedBase,
		RuleIncommensurable, RuleFixedCoRunner, RuleIdleMachine,
		RuleInconclusive,
	}
}

// KnownRule reports whether id names a rule in the catalog.
func KnownRule(id string) bool {
	for _, r := range Rules() {
		if r == id {
			return true
		}
	}
	return false
}

// Statistical grounding of the repetition threshold. SigmaSetup is the
// prior standard deviation of the O3-over-O2 speedup across randomized
// setups: the repo's own randomized estimates (EXPERIMENTS.md, F9) show
// per-setup speedup spreads of 0.5–2 percentage points, so 1.5% is a
// conservative planning prior. TargetHalfWidth is one percentage point —
// comfortably below the up-to-10% biases the paper documents, so an
// experiment sized for it can actually distinguish effect from bias.
const (
	SigmaSetup      = 0.015
	TargetHalfWidth = 0.01
	Level           = 0.95
)

// MinSetups is the smallest randomized-setup count for which the Student-t
// interval at Level reaches TargetHalfWidth under the SigmaSetup prior —
// the insufficient-setups threshold, derived (stats.MinSamples), not
// chosen.
func MinSetups() int {
	return stats.MinSamples(SigmaSetup, TargetHalfWidth, Level)
}

// Finding is the wire finding type, shared with the daemon.
type Finding = server.AuditFinding

// Auditor evaluates the rule catalog. The runner hook supplies the shared
// measurement Runner for a workload size: the oracle-backed rules compile
// and link (cached, static) but never simulate.
type Auditor struct {
	runner func(size bench.Size) *core.Runner
}

// New builds an Auditor over a Runner source — server.(*Server).Runner for
// the daemon, or any compatible closure for the CLI.
func New(runner func(size bench.Size) *core.Runner) *Auditor {
	return &Auditor{runner: runner}
}

// Spec is one audited spec with its provenance and file-level
// suppressions.
type Spec struct {
	// File is the origin (rendered in findings); empty for API
	// submissions.
	File string
	// Spec is the raw spec as written: its AuditAllow field is honored and
	// Canonicalize is applied here, exactly as the daemon does at submit.
	Spec server.JobSpec
	// Allow holds file-level //audit:allow suppressions, in addition to
	// the spec's own audit_allow field.
	Allow []string
	// Result, when non-nil, is the stored result the spec came from; the
	// result-level rules (inconclusive-interval) run against it.
	Result *server.Result
}

// AuditSpec implements server.SpecAuditor: the per-spec rules, with the
// spec's audit_allow suppressions applied. This is the daemon's submit-time
// gate.
func (a *Auditor) AuditSpec(spec server.JobSpec) ([]Finding, error) {
	return a.auditOne(Spec{Spec: spec})
}

// auditOne runs every single-spec rule and applies suppressions.
func (a *Auditor) auditOne(in Spec) ([]Finding, error) {
	c, err := in.Spec.Canonicalize()
	if err != nil {
		return nil, err
	}
	var fs []Finding
	fs = append(fs, ruleRepetitions(c, in.Spec.Tol > 0)...)
	fs = append(fs, ruleTenancy(c, in.Spec.Context)...)
	oracleFs, err := a.ruleOracle(c)
	if err != nil {
		return nil, err
	}
	fs = append(fs, oracleFs...)
	fs = append(fs, ruleInconclusive(in.Result)...)
	return finish(fs, allowSet(in)), nil
}

// AuditSet audits a group of specs that back one conclusion: every
// per-spec rule, plus the cross-spec comparability rules. This is what
// `biaslab audit` runs over the files it is given.
func (a *Auditor) AuditSet(ins []Spec) (*Report, error) {
	rep := &Report{}
	for _, in := range ins {
		fs, err := a.auditOne(in)
		if err != nil {
			return nil, fmt.Errorf("audit: %s: %w", subject(in), err)
		}
		rep.add(in, fs)
	}
	for _, e := range ruleIncommensurable(ins) {
		rep.addEntry(e)
	}
	rep.tally()
	return rep, nil
}

// allowSet merges file-level and spec-field suppressions.
func allowSet(in Spec) map[string]bool {
	m := map[string]bool{}
	for _, r := range in.Allow {
		m[r] = true
	}
	for _, r := range in.Spec.AuditAllow {
		m[r] = true
	}
	return m
}

// finish applies suppressions and fixes the ordering (severity, then rule)
// so findings render deterministically.
func finish(fs []Finding, allow map[string]bool) []Finding {
	for i := range fs {
		if allow[fs[i].Rule] {
			fs[i].Suppressed = true
		}
	}
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity == server.AuditError
		}
		return fs[i].Rule < fs[j].Rule
	})
	return fs
}

// ruleRepetitions covers single-setup and insufficient-setups: the
// randomization-and-sample-size crimes, with the threshold derived from
// stats.MinSamples rather than decreed.
func ruleRepetitions(c server.JobSpec, adaptive bool) []Finding {
	if c.Kind != server.KindRandomize {
		return nil
	}
	min := MinSetups()
	if c.N == 1 {
		return []Finding{{
			Rule:     RuleSingleSetup,
			Severity: server.AuditError,
			Message: fmt.Sprintf(
				"randomize with n=1 is a single-setup comparison: one setup's bias is unknowable and can exceed the effect (the paper's Fig. 9 setups land outside the robust interval); use n ≥ %d",
				min),
		}}
	}
	if c.N >= min {
		return nil
	}
	if adaptive {
		return []Finding{{
			Rule:     RuleFewSetups,
			Severity: server.AuditWarn,
			Message: fmt.Sprintf(
				"adaptive randomize capped at n=%d setups, below the n=%d that σ₀=%.3f requires for a ±%.0f%%-point 95%% CI: the run may stop at the cap without reaching tol=%g",
				c.N, min, SigmaSetup, TargetHalfWidth*100, c.Tol),
		}}
	}
	return []Finding{{
		Rule:     RuleFewSetups,
		Severity: server.AuditError,
		Message: fmt.Sprintf(
			"n=%d randomized setups is statistically insufficient: with prior setup-variance σ₀=%.3f, a 95%% t interval needs n ≥ %d to reach a ±%.0f%%-point half-width (t(n−1)·σ₀/√n ≤ %.2f)",
			c.N, SigmaSetup, min, TargetHalfWidth*100, TargetHalfWidth),
	}}
}

// ruleTenancy covers the multi-tenant interference crimes. The context
// argument is the raw spec's deployment-context declaration: Canonicalize
// drops it (judgment metadata, never part of the content key), so it is
// threaded in alongside the canonical spec, like the adaptive flag in
// ruleRepetitions.
func ruleTenancy(c server.JobSpec, context string) []Finding {
	var fs []Finding
	if c.Kind == server.KindRandomize && c.CoBench != "" {
		fs = append(fs, Finding{
			Rule:     RuleFixedCoRunner,
			Severity: server.AuditError,
			Message: fmt.Sprintf(
				"randomize pins %s as the only co-runner: every setup shares one tenant's interference, so the estimate is conditional on an unreported tenancy choice — the measured co-runner swing flips O2-vs-O3 verdicts (EXPERIMENTS.md, E10); randomize the tenant too (co_random) or sweep it (kind=sweep-tenant)",
				c.CoBench),
		})
	}
	if context == "serving" {
		interference := c.CoBench != "" || c.CoRandom || c.Kind == server.KindSweepTenant
		if !interference {
			fs = append(fs, Finding{
				Rule:     RuleIdleMachine,
				Severity: server.AuditWarn,
				Message: fmt.Sprintf(
					"the spec claims a %q deployment context but every measurement runs on an idle machine: co-run interference is part of the claimed workload; sweep it (kind=sweep-tenant), randomize it (co_random) or at least fix a representative tenant (co_bench)",
					context),
			})
		}
	}
	return fs
}

// fineGridStep is the oracle-plan grid resolution: one stack slot (8
// bytes), the finest displacement the environment can apply.
const fineGridStep = 8

// fineGrid is the dense env-size grid the oracle rules plan over: every
// representable size at slot resolution up to the sweep ceiling.
func fineGrid() []uint64 {
	sizes := []uint64{8}
	for e := uint64(17); e <= 4096; e += fineGridStep {
		sizes = append(sizes, e)
	}
	return sizes
}

// planFor builds the merged O2+O3 env plan for a canonical spec — the same
// artifact `biaslab predict -json` emits and the adaptive sweep consumes.
// Compile and link only; nothing is simulated.
func (a *Auditor) planFor(c server.JobSpec) (*analysis.EnvPlan, error) {
	size, err := bench.ParseSize(c.Size)
	if err != nil {
		return nil, err
	}
	setup, b, err := server.BaseSetup(c)
	if err != nil {
		return nil, err
	}
	return core.PlanEnvSweep(a.runner(size), b, setup, fineGrid())
}

// ruleOracle covers the two oracle-backed rules: coarse-env-grid for
// sweeps, unrandomized-sensitive for fixed-setup runs.
func (a *Auditor) ruleOracle(c server.JobSpec) ([]Finding, error) {
	switch c.Kind {
	case server.KindSweepEnv:
		if c.Adaptive {
			// The adaptive sweep measures the predicted boundaries by
			// construction; the grid cannot skip them.
			return nil, nil
		}
		plan, err := a.planFor(c)
		if err != nil {
			return nil, err
		}
		return ruleCoarseGrid(c, plan), nil
	case server.KindRun:
		plan, err := a.planFor(c)
		if err != nil {
			return nil, err
		}
		fs := ruleUnrandomized(c, plan)
		chFs, err := a.ruleUnrandomizedChannels(c)
		if err != nil {
			return nil, err
		}
		return append(fs, chFs...), nil
	}
	return nil, nil
}

// ruleUnrandomizedChannels covers the code-placement variants of
// unrandomized-sensitive. For each channel it plans a minimal two-point
// probe — the unperturbed layout against a 4-byte perturbation, the
// smallest displacement the channel can apply — and fires only when the
// plan is exact with a boundary: the comparator *proved* the two layouts
// measure differently, so a fixed-layout number depends on a layout choice
// the spec never reports. An undecided pair stays silent — the auditor
// accuses only on proof.
func (a *Auditor) ruleUnrandomizedChannels(c server.JobSpec) ([]Finding, error) {
	size, err := bench.ParseSize(c.Size)
	if err != nil {
		return nil, err
	}
	setup, b, err := server.BaseSetup(c)
	if err != nil {
		return nil, err
	}
	r := a.runner(size)
	probes := []struct {
		rule    string
		knob    string
		values  []uint64
		planner func(*core.Runner, *bench.Benchmark, core.Setup, []uint64) (*analysis.EnvPlan, error)
	}{
		{RuleUnrandomizedPad, "inter-object text padding", []uint64{0, 4}, core.PlanPadSweep},
		{RuleUnrandomizedBase, "image base", []uint64{linker.DefaultTextBase, linker.DefaultTextBase + 4}, core.PlanBaseSweep},
	}
	var fs []Finding
	for _, p := range probes {
		plan, err := p.planner(r, b, setup, p.values)
		if err != nil {
			return nil, err
		}
		if !plan.Exact || len(plan.Boundaries) == 0 {
			continue
		}
		fs = append(fs, Finding{
			Rule:     p.rule,
			Severity: server.AuditWarn,
			Message: fmt.Sprintf(
				"the dataflow comparator proves %s@%s is sensitive to %s (a 4-byte shift provably changes its cycle count): a fixed-layout run measures one arbitrary point of that swing; sweep the channel (kind=sweep-%s) or randomize the setup",
				c.Bench, c.Machine, p.knob, plan.Channel),
		})
	}
	return fs, nil
}

// ruleCoarseGrid flags a dense sweep whose step strides over predicted
// plateaus: between two consecutive transition boundaries the oracle
// predicts constant cycles, so a plateau containing no grid point is
// structure the sweep reports nothing about — its bias range (min/max
// swing) silently underestimates the true swing.
func ruleCoarseGrid(c server.JobSpec, plan *analysis.EnvPlan) []Finding {
	if len(plan.Boundaries) == 0 {
		return nil
	}
	// Predicted plateaus as byte intervals [start, end).
	starts := []uint64{plan.Sizes[0]}
	for _, bi := range plan.Boundaries {
		starts = append(starts, plan.Sizes[bi])
	}
	grid := core.DefaultEnvSizes(c.Step)
	missed := 0
	narrowest := uint64(0)
	for i, start := range starts {
		end := uint64(4096 + 1)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		covered := false
		for _, g := range grid {
			if g >= start && g < end {
				covered = true
				break
			}
		}
		if !covered {
			missed++
			if w := end - start; narrowest == 0 || w < narrowest {
				narrowest = w
			}
		}
	}
	if missed == 0 {
		return nil
	}
	return []Finding{{
		Rule:     RuleCoarseGrid,
		Severity: server.AuditWarn,
		Message: fmt.Sprintf(
			"step=%d strides over %d of %d oracle-predicted plateaus (narrowest missed plateau %d bytes): the sweep's bias range underestimates the true swing; use adaptive=true or step ≤ %d",
			c.Step, missed, len(starts), narrowest, narrowest),
	}}
}

// ruleUnrandomized flags a fixed-setup run of a benchmark whose predicted
// env signature is not flat: the reported cycle count then depends on an
// unreported setup choice (the paper's Fig. 1 in miniature).
func ruleUnrandomized(c server.JobSpec, plan *analysis.EnvPlan) []Finding {
	if len(plan.Boundaries) == 0 {
		return nil
	}
	return []Finding{{
		Rule:     RuleUnrandomized,
		Severity: server.AuditWarn,
		Message: fmt.Sprintf(
			"the bias oracle predicts %s@%s is environment-sensitive (%d env-size transitions): a single run at env_bytes=%d measures one arbitrary point of that swing; use kind=randomize to report an interval instead",
			c.Bench, c.Machine, len(plan.Boundaries), c.EnvBytes),
	}}
}

// ruleIncommensurable is the cross-spec rule: randomized speedup estimates
// for the same benchmark pooled across machines whose cache/TLB geometries
// differ are not commensurable — the paper's Fig. 4/5 show the same binary
// pair flipping direction between Pentium 4 and Core 2. Sweeps across
// machines are legitimate bias studies; pooling *effect estimates* is the
// crime, so the rule watches randomize specs only.
func ruleIncommensurable(ins []Spec) []Entry {
	type member struct {
		in  Spec
		c   server.JobSpec
		geo string
	}
	groups := map[string][]member{}
	var orderedKeys []string
	for _, in := range ins {
		c, err := in.Spec.Canonicalize()
		if err != nil || c.Kind != server.KindRandomize {
			continue // per-spec auditing already reported the error
		}
		cfg, ok := machine.ConfigByName(c.Machine)
		if !ok {
			continue
		}
		key := c.Kind + "/" + c.Bench + "/" + c.Size + "/" + c.Personality
		if _, seen := groups[key]; !seen {
			orderedKeys = append(orderedKeys, key)
		}
		groups[key] = append(groups[key], member{in: in, c: c, geo: geometry(cfg)})
	}
	var entries []Entry
	for _, key := range orderedKeys {
		ms := groups[key]
		for i := 1; i < len(ms); i++ {
			if ms[i].c.Machine == ms[0].c.Machine || ms[i].geo == ms[0].geo {
				continue
			}
			f := Finding{
				Rule:     RuleIncommensurable,
				Severity: server.AuditError,
				Message: fmt.Sprintf(
					"compares %s across machines with different cache geometry: %s (%s) vs %s (%s); the paper's Fig. 4/5 show such speedups flipping sign between machines — audit them as separate experiments",
					ms[0].c.Bench, ms[0].c.Machine, ms[0].geo, ms[i].c.Machine, ms[i].geo),
			}
			if allowSet(ms[i].in)[f.Rule] || allowSet(ms[0].in)[f.Rule] {
				f.Suppressed = true
			}
			entries = append(entries, Entry{Subject: subject(ms[i].in), Finding: f})
		}
	}
	return entries
}

// geometry renders the comparability-relevant part of a machine config:
// cache and TLB shape, not penalties.
func geometry(cfg machine.Config) string {
	cc := func(c machine.CacheConfig) string {
		return fmt.Sprintf("%dKB/%dw/%dB", c.SizeKB, c.Ways, c.LineSize)
	}
	return fmt.Sprintf("L1I %s, L1D %s, L2 %s, ITLB %d, DTLB %d, page %dB",
		cc(cfg.L1I), cc(cfg.L1D), cc(cfg.L2), cfg.ITLBEntries, cfg.DTLBEntries, cfg.PageSize)
}

// AuditResult applies every rule — spec-level and result-level — to a
// stored result.
func (a *Auditor) AuditResult(res *server.Result, allow []string) ([]Finding, error) {
	return a.auditOne(Spec{Spec: res.Spec, Allow: allow, Result: res})
}

// ruleInconclusive is the result-level crime: claiming a direction from an
// interval that spans no effect. A spec cannot commit it — only a result
// can — so it fires only when the audited subject is a stored result.
func ruleInconclusive(res *server.Result) []Finding {
	if res == nil || res.Randomize == nil || res.Randomize.Conclusive {
		return nil
	}
	iv := res.Randomize.Estimate.TInterval
	return []Finding{{
		Rule:     RuleInconclusive,
		Severity: server.AuditError,
		Message: fmt.Sprintf(
			"the %.0f%% CI [%.4f, %.4f] spans 1.0: no directional conclusion is supported by this result — report the interval, not a winner",
			iv.Level*100, iv.Lo, iv.Hi),
	}}
}

// subject labels a spec for rendering: its file when known, else its
// content summary.
func subject(in Spec) string {
	if in.File != "" {
		return in.File
	}
	c, err := in.Spec.Canonicalize()
	if err != nil {
		return "spec"
	}
	if c.Kind == server.KindExperiment {
		return c.Kind + " " + c.Experiment
	}
	return c.Kind + " " + c.Bench + "@" + c.Machine
}
