package audit

import (
	"fmt"
	"strings"

	"biaslab/internal/server"
)

// Entry is one finding bound to the spec it was found against.
type Entry struct {
	// Subject names the audited spec: its file path when it came from a
	// file, else a kind/bench/machine summary.
	Subject string  `json:"subject"`
	Finding Finding `json:"finding"`
}

// Report is the outcome of auditing a set of specs: every finding, plus
// tallies and the gating verdict. Its JSON form is the `biaslab audit
// -json` output.
type Report struct {
	// Specs is how many specs were audited.
	Specs int `json:"specs"`
	// Findings lists every finding in render order: per-spec findings in
	// input order, then cross-spec findings.
	Findings []Entry `json:"findings,omitempty"`
	// Errors / Warnings / Suppressed tally the findings; Suppressed counts
	// findings of either severity covered by an allow.
	Errors     int `json:"errors"`
	Warnings   int `json:"warnings"`
	Suppressed int `json:"suppressed"`
	// Gating counts unsuppressed errors: the findings that make OK false,
	// `biaslab audit` exit 1, and ?strict=1 reject.
	Gating int `json:"gating"`
	// OK is the verdict: no gating findings.
	OK bool `json:"ok"`
}

// add records a spec's findings.
func (rep *Report) add(in Spec, fs []Finding) {
	rep.Specs++
	for _, f := range fs {
		rep.Findings = append(rep.Findings, Entry{Subject: subject(in), Finding: f})
	}
}

// addEntry records a cross-spec finding.
func (rep *Report) addEntry(e Entry) {
	rep.Findings = append(rep.Findings, e)
}

// tally recomputes the counters and verdict from Findings.
func (rep *Report) tally() {
	rep.Errors, rep.Warnings, rep.Suppressed, rep.Gating = 0, 0, 0, 0
	for _, e := range rep.Findings {
		f := e.Finding
		if f.Suppressed {
			rep.Suppressed++
		}
		switch {
		case f.Severity == server.AuditError:
			rep.Errors++
			if !f.Suppressed {
				rep.Gating++
			}
		default:
			rep.Warnings++
		}
	}
	rep.OK = rep.Gating == 0
}

// String renders the human report, one line per finding plus a verdict —
// the `biaslab audit` text output, styled after `go vet`:
//
//	examples/specs/guilty.json: error single-setup: randomize with n=1 ... (suppressed)
//	audit: 3 spec(s), 1 error(s) (1 suppressed), 0 warning(s) — ok
func (rep *Report) String() string {
	var sb strings.Builder
	for _, e := range rep.Findings {
		f := e.Finding
		suffix := ""
		if f.Suppressed {
			suffix = " (suppressed)"
		}
		fmt.Fprintf(&sb, "%s: %s %s: %s%s\n", e.Subject, f.Severity, f.Rule, f.Message, suffix)
	}
	verdict := "ok"
	if !rep.OK {
		verdict = fmt.Sprintf("FAIL (%d gating)", rep.Gating)
	}
	fmt.Fprintf(&sb, "audit: %d spec(s), %d error(s) (%d suppressed), %d warning(s) — %s\n",
		rep.Specs, rep.Errors, rep.Suppressed, rep.Warnings, verdict)
	return sb.String()
}
