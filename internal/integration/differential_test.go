package integration

import (
	"context"
	"fmt"
	"testing"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/linker"
	"biaslab/internal/loader"
	"biaslab/internal/machine"
)

// TestFastPathMatchesReference is the equivalence proof for the optimized
// execute engine: every benchmark × {O2, O3} × {gcc, icc} × all three
// machine models runs once through the predecoded fast path and once
// through the retained straightforward reference stepper, and every
// counter, the checksum, the output and the exit code must be
// bit-identical. Any divergence means an "optimization" changed a measured
// value — the one thing this repo must never do.
func TestFastPathMatchesReference(t *testing.T) {
	size := bench.SizeSmall
	if testing.Short() {
		size = bench.SizeTest
	}
	levels := []compiler.Level{compiler.O2, compiler.O3}
	personalities := []compiler.Personality{compiler.GCC, compiler.ICC}
	models := []string{"p4", "core2", "m5"}
	env := loader.SyntheticEnv(512)

	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			for _, pers := range personalities {
				for _, lvl := range levels {
					cfg := compiler.Config{Level: lvl, Personality: pers}
					objs, _, err := compiler.Compile(b.Sources(size), cfg)
					if err != nil {
						t.Fatalf("%s: compile: %v", cfg, err)
					}
					exe, err := linker.Link(objs, linker.Options{})
					if err != nil {
						t.Fatalf("%s: link: %v", cfg, err)
					}
					for _, model := range models {
						mc, ok := machine.ConfigByName(model)
						if !ok {
							t.Fatalf("unknown machine %s", model)
						}
						label := fmt.Sprintf("%s/%s", cfg, model)
						// Separate images: a run mutates its memory.
						load := func() *loader.Image {
							img, err := loader.Load(exe, loader.Options{Env: env, Args: []string{b.Name}})
							if err != nil {
								t.Fatalf("%s: load: %v", label, err)
							}
							return img
						}
						fast, err := machine.New(mc).Run(load(), 1<<31)
						if err != nil {
							t.Fatalf("%s: fast run: %v", label, err)
						}
						ref, err := machine.New(mc).RunReference(load(), 1<<31)
						if err != nil {
							t.Fatalf("%s: reference run: %v", label, err)
						}
						if fast.Counters != ref.Counters {
							t.Errorf("%s: counters diverge:\nfast: %+v\nref:  %+v", label, fast.Counters, ref.Counters)
						}
						if fast.Checksum != ref.Checksum || fast.ExitCode != ref.ExitCode {
							t.Errorf("%s: checksum/exit diverge: %d/%d vs %d/%d",
								label, fast.Checksum, fast.ExitCode, ref.Checksum, ref.ExitCode)
						}
						if len(fast.Output) != len(ref.Output) {
							t.Errorf("%s: output length diverges: %d vs %d", label, len(fast.Output), len(ref.Output))
						} else {
							for i := range fast.Output {
								if fast.Output[i] != ref.Output[i] {
									t.Errorf("%s: output[%d] diverges: %d vs %d", label, i, fast.Output[i], ref.Output[i])
									break
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestRunBatchMatchesReference extends the equivalence proof to the batched
// engine: for every machine model × compiler personality, ALL benchmark ×
// level members run interleaved through one machine.RunBatch call, and each
// member's counters, checksum, output and exit code must be bit-identical
// to a solo run through the reference stepper. Interleaving is the point —
// round-robin slicing must not let one member's budget, predictors, or
// caches contaminate another's.
func TestRunBatchMatchesReference(t *testing.T) {
	size := bench.SizeSmall
	if testing.Short() {
		size = bench.SizeTest
	}
	levels := []compiler.Level{compiler.O2, compiler.O3}
	personalities := []compiler.Personality{compiler.GCC, compiler.ICC}
	models := []string{"p4", "core2", "m5"}
	env := loader.SyntheticEnv(512)

	type member struct {
		label string
		exe   *linker.Executable
		args  []string
	}
	for _, model := range models {
		model := model
		for _, pers := range personalities {
			pers := pers
			t.Run(fmt.Sprintf("%s/%v", model, pers), func(t *testing.T) {
				t.Parallel()
				mc, ok := machine.ConfigByName(model)
				if !ok {
					t.Fatalf("unknown machine %s", model)
				}
				var members []member
				for _, b := range bench.All() {
					for _, lvl := range levels {
						cfg := compiler.Config{Level: lvl, Personality: pers}
						objs, _, err := compiler.Compile(b.Sources(size), cfg)
						if err != nil {
							t.Fatalf("%s %s: compile: %v", b.Name, cfg, err)
						}
						exe, err := linker.Link(objs, linker.Options{})
						if err != nil {
							t.Fatalf("%s %s: link: %v", b.Name, cfg, err)
						}
						members = append(members, member{
							label: fmt.Sprintf("%s/%s/%s", b.Name, cfg, model),
							exe:   exe,
							args:  []string{b.Name},
						})
					}
				}
				load := func(m member) *loader.Image {
					img, err := loader.Load(m.exe, loader.Options{Env: env, Args: m.args})
					if err != nil {
						t.Fatalf("%s: load: %v", m.label, err)
					}
					return img
				}
				ms := make([]*machine.Machine, len(members))
				imgs := make([]*loader.Image, len(members))
				for i, m := range members {
					ms[i] = machine.New(mc)
					imgs[i] = load(m)
				}
				batch, err := machine.RunBatch(context.Background(), ms, imgs, 1<<31)
				if err != nil {
					t.Fatalf("RunBatch: %v", err)
				}
				for i, m := range members {
					ref, err := machine.New(mc).RunReference(load(m), 1<<31)
					if err != nil {
						t.Fatalf("%s: reference run: %v", m.label, err)
					}
					got := batch[i]
					if got.Counters != ref.Counters {
						t.Errorf("%s: counters diverge:\nbatch: %+v\nref:   %+v", m.label, got.Counters, ref.Counters)
					}
					if got.Checksum != ref.Checksum || got.ExitCode != ref.ExitCode {
						t.Errorf("%s: checksum/exit diverge: %d/%d vs %d/%d",
							m.label, got.Checksum, got.ExitCode, ref.Checksum, ref.ExitCode)
					}
					if len(got.Output) != len(ref.Output) {
						t.Errorf("%s: output length diverges: %d vs %d", m.label, len(got.Output), len(ref.Output))
					}
				}
			})
		}
	}
}
