package integration

import (
	"fmt"
	"testing"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/linker"
	"biaslab/internal/loader"
	"biaslab/internal/machine"
)

// TestFastPathMatchesReference is the equivalence proof for the optimized
// execute engine: every benchmark × {O2, O3} × {gcc, icc} × all three
// machine models runs once through the predecoded fast path and once
// through the retained straightforward reference stepper, and every
// counter, the checksum, the output and the exit code must be
// bit-identical. Any divergence means an "optimization" changed a measured
// value — the one thing this repo must never do.
func TestFastPathMatchesReference(t *testing.T) {
	size := bench.SizeSmall
	if testing.Short() {
		size = bench.SizeTest
	}
	levels := []compiler.Level{compiler.O2, compiler.O3}
	personalities := []compiler.Personality{compiler.GCC, compiler.ICC}
	models := []string{"p4", "core2", "m5"}
	env := loader.SyntheticEnv(512)

	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			for _, pers := range personalities {
				for _, lvl := range levels {
					cfg := compiler.Config{Level: lvl, Personality: pers}
					objs, _, err := compiler.Compile(b.Sources(size), cfg)
					if err != nil {
						t.Fatalf("%s: compile: %v", cfg, err)
					}
					exe, err := linker.Link(objs, linker.Options{})
					if err != nil {
						t.Fatalf("%s: link: %v", cfg, err)
					}
					for _, model := range models {
						mc, ok := machine.ConfigByName(model)
						if !ok {
							t.Fatalf("unknown machine %s", model)
						}
						label := fmt.Sprintf("%s/%s", cfg, model)
						// Separate images: a run mutates its memory.
						load := func() *loader.Image {
							img, err := loader.Load(exe, loader.Options{Env: env, Args: []string{b.Name}})
							if err != nil {
								t.Fatalf("%s: load: %v", label, err)
							}
							return img
						}
						fast, err := machine.New(mc).Run(load(), 1<<31)
						if err != nil {
							t.Fatalf("%s: fast run: %v", label, err)
						}
						ref, err := machine.New(mc).RunReference(load(), 1<<31)
						if err != nil {
							t.Fatalf("%s: reference run: %v", label, err)
						}
						if fast.Counters != ref.Counters {
							t.Errorf("%s: counters diverge:\nfast: %+v\nref:  %+v", label, fast.Counters, ref.Counters)
						}
						if fast.Checksum != ref.Checksum || fast.ExitCode != ref.ExitCode {
							t.Errorf("%s: checksum/exit diverge: %d/%d vs %d/%d",
								label, fast.Checksum, fast.ExitCode, ref.Checksum, ref.ExitCode)
						}
						if len(fast.Output) != len(ref.Output) {
							t.Errorf("%s: output length diverges: %d vs %d", label, len(fast.Output), len(ref.Output))
						} else {
							for i := range fast.Output {
								if fast.Output[i] != ref.Output[i] {
									t.Errorf("%s: output[%d] diverges: %d vs %d", label, i, fast.Output[i], ref.Output[i])
									break
								}
							}
						}
					}
				}
			}
		})
	}
}
