// Package integration holds the cross-component tests: full-pipeline
// differential testing of every benchmark against the IR oracle, the
// metamorphic "setup changes cycles but never output" property across the
// whole suite, and randomized-program equivalence between the compiled
// machine and the interpreter.
package integration

import (
	"context"
	"fmt"
	"testing"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/core"
	"biaslab/internal/ir"
	"biaslab/internal/linker"
	"biaslab/internal/loader"
	"biaslab/internal/machine"
	"biaslab/internal/stats"
)

// oracle runs a program's IR through the interpreter.
func oracle(t *testing.T, prog *ir.Program) uint64 {
	t.Helper()
	it, err := ir.NewInterp(prog)
	if err != nil {
		t.Fatal(err)
	}
	it.SetStepLimit(1 << 28)
	if err := it.Run(); err != nil {
		t.Fatal(err)
	}
	return it.Checksum
}

// runMachine compiles, links, loads and runs sources on a machine model.
func runMachine(t *testing.T, srcs []compiler.Source, cfg compiler.Config, mc machine.Config, env []string) (uint64, *ir.Program) {
	t.Helper()
	objs, prog, err := compiler.Compile(srcs, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	exe, err := linker.Link(objs, linker.Options{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	img, err := loader.Load(exe, loader.Options{Env: env})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	m := machine.New(mc)
	res, err := m.Run(img, 1<<28)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Checksum, prog
}

// TestFullMatrixDifferential is the deepest correctness test in the repo:
// every benchmark × every optimization level × both personalities, compiled
// through the whole toolchain and executed on the machine, must match the
// IR interpreter bit-for-bit.
func TestFullMatrixDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow")
	}
	mc := machine.Core2()
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			var want uint64
			first := true
			for _, lvl := range []compiler.Level{compiler.O0, compiler.O1, compiler.O2, compiler.O3} {
				for _, pers := range []compiler.Personality{compiler.GCC, compiler.ICC} {
					cfg := compiler.Config{Level: lvl, Personality: pers}
					got, prog := runMachine(t, b.Sources(bench.SizeTest), cfg, mc, nil)
					if first {
						want = oracle(t, prog)
						first = false
					}
					if got != want {
						t.Errorf("%s %v: checksum %d, want %d", b.Name, cfg, got, want)
					}
				}
			}
		})
	}
}

// TestMetamorphicSetupInvariance sweeps the suite across setup mutations —
// env sizes, link orders, stack shifts, machines — and requires identical
// output everywhere. This is the paper's invariant stated as a test.
func TestMetamorphicSetupInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("suite sweep is slow")
	}
	r := core.NewRunner(bench.SizeTest)
	rng := stats.NewRNG(101)
	for _, b := range bench.All() {
		b := b
		units := len(r.UnitNames(b))
		setups := []core.Setup{
			core.DefaultSetup("core2"),
			{Machine: "p4", Compiler: compiler.Config{Level: compiler.O2}, EnvBytes: 8},
			{Machine: "m5", Compiler: compiler.Config{Level: compiler.O2}, EnvBytes: 4096},
			{Machine: "core2", Compiler: compiler.Config{Level: compiler.O2}, EnvBytes: 777, LinkOrder: core.RandomOrder(units, rng)},
			{Machine: "core2", Compiler: compiler.Config{Level: compiler.O2}, EnvBytes: 512, StackShift: 344},
		}
		var want uint64
		for i, s := range setups {
			m, err := r.Measure(context.Background(), b, s)
			if err != nil {
				t.Fatalf("%s under %v: %v", b.Name, s, err)
			}
			if i == 0 {
				want = m.Checksum
			} else if m.Checksum != want {
				t.Errorf("%s: setup %v changed output (%d vs %d)", b.Name, s, m.Checksum, want)
			}
		}
	}
}

// genProgram builds a random but well-defined cmini program from a seed:
// arithmetic over a global array with data-dependent control flow, ending
// in a checksum. Divisions are guarded so the program cannot trap.
func genProgram(seed uint64) string {
	rng := stats.NewRNG(seed)
	ops := []string{"+", "-", "*", "&", "|", "^"}
	var body string
	for i := 0; i < 8; i++ {
		op := ops[rng.Intn(len(ops))]
		c := rng.Intn(1000) + 1
		switch rng.Intn(4) {
		case 0:
			body += fmt.Sprintf("\t\tx = (x %s %d) & 1048575;\n", op, c)
		case 1:
			body += fmt.Sprintf("\t\tdata[i & 63] = (data[i & 63] %s x) & 65535;\n", op)
		case 2:
			body += fmt.Sprintf("\t\tif (x > %d) { x = x - %d; } else { x = x + %d; }\n", c, c/2+1, c%97+1)
		case 3:
			body += fmt.Sprintf("\t\tx = x %s helper(data[(i * %d) & 63], %d);\n", op, rng.Intn(7)+1, c)
		}
	}
	return fmt.Sprintf(`
int data[64];
int helper(int a, int b) {
	if (b == 0) { return a; }
	return (a * 31 + b) & 1048575;
}
void main() {
	int x = %d;
	for (int i = 0; i < 200; i++) {
%s	}
	int sum = 0;
	for (int i = 0; i < 64; i++) {
		sum = (sum * 17 + data[i]) & 268435455;
	}
	checksum(sum);
	checksum(x);
}
`, rng.Intn(4096), body)
}

// TestRandomProgramEquivalence generates random programs and checks that
// the fully optimized machine execution matches the unoptimized oracle —
// a property-based test over the entire toolchain.
func TestRandomProgramEquivalence(t *testing.T) {
	mc := machine.M5O3()
	for seed := uint64(1); seed <= 25; seed++ {
		src := genProgram(seed)
		srcs := []compiler.Source{{Name: "rand.cm", Text: src}}
		// Oracle at O0.
		_, prog, err := compiler.Compile(srcs, compiler.Config{Level: compiler.O0})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		want := oracle(t, prog)
		// Machine at O3/icc (every optimization on).
		got, _ := runMachine(t, srcs, compiler.Config{Level: compiler.O3, Personality: compiler.ICC}, mc, []string{"X=1"})
		if got != want {
			t.Errorf("seed %d: O3/icc machine checksum %d != oracle %d\n%s", seed, got, want, src)
		}
	}
}

// TestCyclesDifferAcrossMachines sanity-checks that the three platform
// models are actually different machines: same program, same binary,
// different cycle counts.
func TestCyclesDifferAcrossMachines(t *testing.T) {
	r := core.NewRunner(bench.SizeTest)
	b, _ := bench.ByName("milc")
	cycles := map[string]uint64{}
	for _, mach := range []string{"p4", "core2", "m5"} {
		m, err := r.Measure(context.Background(), b, core.DefaultSetup(mach))
		if err != nil {
			t.Fatal(err)
		}
		cycles[mach] = m.Cycles
	}
	if cycles["p4"] == cycles["core2"] || cycles["core2"] == cycles["m5"] {
		t.Errorf("machine models indistinguishable: %v", cycles)
	}
	// The P4 (narrow, slow memory) should be the slowest of the three.
	if cycles["p4"] <= cycles["core2"] || cycles["p4"] <= cycles["m5"] {
		t.Errorf("P4 should be slowest: %v", cycles)
	}
}

// TestO3EffectHeterogeneous verifies the precondition of the whole study:
// the *true* O3 effect differs across benchmarks (some gain a lot, some
// little), because otherwise bias could not plausibly flip conclusions.
func TestO3EffectHeterogeneous(t *testing.T) {
	if testing.Short() {
		t.Skip("suite sweep is slow")
	}
	r := core.NewRunner(bench.SizeTest)
	var speedups []float64
	for _, b := range bench.All() {
		sp, _, _, err := r.Speedup(context.Background(), b, core.DefaultSetup("core2"), compiler.O2, compiler.O3)
		if err != nil {
			t.Fatal(err)
		}
		speedups = append(speedups, sp)
	}
	s := stats.Summarize(speedups)
	if s.Range() < 0.02 {
		t.Errorf("O3 effect suspiciously uniform across the suite: %v", s)
	}
}
