package report

import (
	"fmt"
	"strings"

	"biaslab/internal/analysis"
)

// ConflictMapText renders a bias oracle conflict map: the predicted
// env-size transition points with their cause and predicted cycle step.
func ConflictMapText(cm *analysis.ConflictMap) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "predicted env-size sensitivity of %s on %s\n", cm.Bench, cm.Machine)
	if len(cm.Sizes) > 0 {
		fmt.Fprintf(&sb, "grid: %d env sizes in [%d, %d]\n", len(cm.Sizes), cm.Sizes[0], cm.Sizes[len(cm.Sizes)-1])
	}
	if cm.Approx {
		fmt.Fprintf(&sb, "APPROXIMATE: %s\n", strings.Join(cm.ApproxReasons, "; "))
	}
	if cm.PressureAnywhere {
		sb.WriteString("set pressure detected: transition points are exact, cycle deltas are not\n")
	}
	sb.WriteByte('\n')
	if len(cm.Transitions) == 0 {
		sb.WriteString("no transitions predicted: measured cycles should be constant across the grid\n")
		return sb.String()
	}
	t := &Table{
		Headers: []string{"env bytes", "initial SP", "Δcycles", "cause"},
	}
	for _, tr := range cm.Transitions {
		t.AddRow(
			fmt.Sprintf("%d→%d", tr.PrevEnv, tr.EnvBytes),
			fmt.Sprintf("%#x", tr.Next.SP),
			fmt.Sprintf("%+d", tr.DeltaCycles),
			tr.Reason,
		)
	}
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "\n%d transitions: between consecutive ones the measured cycle count cannot move\n", len(cm.Transitions))
	return sb.String()
}

// ConflictMapCSV is the replottable twin of ConflictMapText.
func ConflictMapCSV(cm *analysis.ConflictMap) string {
	t := &Table{Headers: []string{"prev_env", "env", "sp", "stack_lines", "stack_l2", "stack_pages", "delta_cycles", "reason"}}
	for _, tr := range cm.Transitions {
		t.AddRow(tr.PrevEnv, tr.EnvBytes, tr.Next.SP, tr.Next.StackLines, tr.Next.StackL2, tr.Next.StackPages, tr.DeltaCycles, tr.Reason)
	}
	return t.CSV()
}

// ChannelMapText renders a channel conflict map: the comparator's verdict
// for every consecutive pair of grid values, then the full pairwise verdict
// counts. Consecutive pairs are what a plan turns into plateaus and
// boundaries; the totals say how much of the grid the proofs covered.
func ChannelMapText(cm *analysis.ChannelConflictMap) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "predicted %s-channel sensitivity of %s on %s\n", cm.Channel, cm.Bench, cm.Machine)
	if len(cm.Values) > 0 {
		fmt.Fprintf(&sb, "grid: %d values in [%d, %d]\n", len(cm.Values), cm.Values[0], cm.Values[len(cm.Values)-1])
	}
	if cm.Approx {
		fmt.Fprintf(&sb, "APPROXIMATE: %s\n", strings.Join(cm.ApproxReasons, "; "))
	}
	sb.WriteByte('\n')
	t := &Table{Headers: []string{"pair", "verdict", "reason"}}
	for i := 1; i < len(cm.Values); i++ {
		p := cm.Pair(i-1, i)
		if p == nil {
			continue
		}
		t.AddRow(fmt.Sprintf("%d→%d", cm.Values[i-1], cm.Values[i]), p.Verdict.String(), p.Reason)
	}
	sb.WriteString(t.String())
	var eq, tr, un int
	for _, p := range cm.Pairs {
		switch p.Verdict {
		case analysis.VerdictEqual:
			eq++
		case analysis.VerdictTransition:
			tr++
		default:
			un++
		}
	}
	fmt.Fprintf(&sb, "\nall %d pairs: %d proven equal, %d proven transitions, %d undecided\n",
		len(cm.Pairs), eq, tr, un)
	return sb.String()
}

// ChannelMapCSV is the replottable twin of ChannelMapText, over every pair.
func ChannelMapCSV(cm *analysis.ChannelConflictMap) string {
	t := &Table{Headers: []string{"value_i", "value_j", "verdict", "reason"}}
	for _, p := range cm.Pairs {
		t.AddRow(cm.Values[p.I], cm.Values[p.J], p.Verdict.String(), p.Reason)
	}
	return t.CSV()
}

// LinkOrderText renders the permutation half of the conflict map: every
// enumerated link order with its predicted alignment exposure, baseline
// first.
func LinkOrderText(lm *analysis.LinkOrderMap, objNames []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "link-order layout classes (fetch block %d bytes)\n", lm.FetchBlockBytes)
	fmt.Fprintf(&sb, "%d permutations, %d distinct layouts — at most %d distinct cycle counts from link order alone\n",
		len(lm.Perms), lm.Classes, lm.Classes)
	if lm.Truncated {
		sb.WriteString("enumeration truncated at the permutation cap\n")
	}
	sb.WriteByte('\n')
	t := &Table{Headers: []string{"order", "misaligned entries", "data base", "L1I pressure", "layout"}}
	for i, p := range lm.Perms {
		label := orderLabel(p.Order, objNames)
		if i == 0 {
			label += " (baseline)"
		}
		t.AddRow(
			label,
			fmt.Sprintf("%d %s", len(p.MisalignedFuncs), summarizeFuncs(p.MisalignedFuncs)),
			fmt.Sprintf("%#x", p.DataBase),
			p.L1IPressure,
			fmt.Sprintf("%016x", p.LayoutSig),
		)
	}
	sb.WriteString(t.String())
	return sb.String()
}

func orderLabel(order []int, objNames []string) string {
	parts := make([]string, len(order))
	for i, src := range order {
		if src < len(objNames) {
			parts[i] = strings.TrimSuffix(objNames[src], ".cm")
		} else {
			parts[i] = fmt.Sprint(src)
		}
	}
	return strings.Join(parts, ",")
}

func summarizeFuncs(names []string) string {
	if len(names) == 0 {
		return ""
	}
	const max = 4
	if len(names) > max {
		return "(" + strings.Join(names[:max], " ") + " …)"
	}
	return "(" + strings.Join(names, " ") + ")"
}
