package report

import (
	"strings"
	"testing"

	"biaslab/internal/stats"
)

func TestTable(t *testing.T) {
	tb := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42)
	out := tb.String()
	for _, want := range []string{"demo", "name", "alpha", "1.5000", "42", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") || !strings.Contains(csv, "alpha,1.5000") {
		t.Errorf("csv wrong:\n%s", csv)
	}
}

func TestLineChart(t *testing.T) {
	s := []Series{{
		Name: "speedup",
		X:    []float64{0, 1, 2, 3, 4},
		Y:    []float64{0.98, 1.02, 0.99, 1.04, 1.00},
	}}
	out := LineChart("Figure 2", s, 40, 10, 1.0, true)
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "*") {
		t.Errorf("chart missing content:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("reference line missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestLineChartDegenerate(t *testing.T) {
	if out := LineChart("empty", nil, 40, 10, 1, false); !strings.Contains(out, "no data") {
		t.Errorf("empty chart: %s", out)
	}
	// Flat series must not divide by zero.
	s := []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}}
	if out := LineChart("flat", s, 40, 8, 5, true); len(out) == 0 {
		t.Error("flat chart empty")
	}
}

func TestSeriesCSV(t *testing.T) {
	csv := SeriesCSV([]Series{{Name: "a", X: []float64{1}, Y: []float64{2}}})
	if csv != "series,x,y\na,1,2\n" {
		t.Errorf("csv = %q", csv)
	}
}

func TestRangeChart(t *testing.T) {
	samples := map[string][]float64{
		"perlbench": {0.97, 0.99, 1.01, 1.03},
		"gcc":       {1.02, 1.03, 1.04, 1.05},
	}
	out := RangeChart("Figure 3", []string{"perlbench", "gcc"}, samples, 1.0)
	for _, want := range []string{"Figure 3", "perlbench", "gcc", "M", "="} {
		if !strings.Contains(out, want) {
			t.Errorf("range chart missing %q:\n%s", want, out)
		}
	}
}

func TestDistributionCSV(t *testing.T) {
	csv := DistributionCSV(map[string][]float64{"b": {2}, "a": {1}})
	if csv != "label,value\na,1\nb,2\n" {
		t.Errorf("csv = %q", csv)
	}
}

func TestIntervalChart(t *testing.T) {
	means := map[string]float64{"x": 1.02}
	ivs := map[string]stats.Interval{"x": {Lo: 0.99, Hi: 1.05, Level: 0.95}}
	out := IntervalChart("Figure 9", []string{"x"}, means, ivs, 1.0)
	if !strings.Contains(out, "O") || !strings.Contains(out, "|") {
		t.Errorf("interval chart missing marks:\n%s", out)
	}
}
