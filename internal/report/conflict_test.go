package report

import (
	"strings"
	"testing"

	"biaslab/internal/analysis"
)

func sampleConflictMap() *analysis.ConflictMap {
	return &analysis.ConflictMap{
		Bench:   "hmmer",
		Machine: "core2",
		Sizes:   []uint64{24, 32, 40},
		Transitions: []analysis.Transition{
			{
				PrevEnv:     24,
				EnvBytes:    32,
				Next:        analysis.EnvSignature{SP: 0xffff80, StackLines: 34, StackL2: 34, StackPages: 1},
				DeltaCycles: -212,
				Reason:      "L1D stack lines 35→34",
			},
		},
	}
}

func TestConflictMapText(t *testing.T) {
	got := ConflictMapText(sampleConflictMap())
	for _, want := range []string{"hmmer", "core2", "24→32", "-212", "L1D stack lines"} {
		if !strings.Contains(got, want) {
			t.Errorf("rendering lacks %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "APPROXIMATE") {
		t.Errorf("exact map rendered as approximate:\n%s", got)
	}

	cm := sampleConflictMap()
	cm.Approx = true
	cm.ApproxReasons = []string{"next-line prefetch not modelled"}
	if got := ConflictMapText(cm); !strings.Contains(got, "APPROXIMATE: next-line prefetch not modelled") {
		t.Errorf("approximate map not marked:\n%s", got)
	}

	cm = sampleConflictMap()
	cm.Transitions = nil
	if got := ConflictMapText(cm); !strings.Contains(got, "no transitions predicted") {
		t.Errorf("empty map not explained:\n%s", got)
	}
}

func TestConflictMapCSV(t *testing.T) {
	got := ConflictMapCSV(sampleConflictMap())
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[1], "24,32,") {
		t.Errorf("CSV row = %q", lines[1])
	}
}

func TestLinkOrderText(t *testing.T) {
	lm := &analysis.LinkOrderMap{
		FetchBlockBytes: 16,
		Perms: []analysis.LinkPerm{
			{Order: []int{0, 1}, MisalignedFuncs: []string{"main"}, DataBase: 0x101000, LayoutSig: 1},
			{Order: []int{1, 0}, DataBase: 0x101000, LayoutSig: 2},
		},
		Classes: 2,
	}
	got := LinkOrderText(lm, []string{"a.cm", "b.cm"})
	for _, want := range []string{"a,b (baseline)", "b,a", "2 distinct layouts", "1 (main)"} {
		if !strings.Contains(got, want) {
			t.Errorf("rendering lacks %q:\n%s", want, got)
		}
	}
}
