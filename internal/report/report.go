// Package report renders experiment results as text: aligned tables,
// ASCII line charts for sweep figures, and range ("violin") charts for
// per-benchmark speedup distributions. Every renderer has a CSV twin so
// results can be replotted with external tooling.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"biaslab/internal/stats"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Headers, ","))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		sb.WriteString(strings.Join(r, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// LineChart renders one or more series as an ASCII chart of the given size.
// A horizontal rule is drawn at refY when drawRef is set (the figures use
// it for speedup = 1.0, the "no effect" line the paper's measurements
// cross).
func LineChart(title string, series []Series, width, height int, refY float64, drawRef bool) string {
	if width < 16 {
		width = 64
	}
	if height < 4 {
		height = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if drawRef {
		minY, maxY = math.Min(minY, refY), math.Max(maxY, refY)
	}
	if minX > maxX || minY > maxY {
		return title + "\n(no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(y float64) int {
		r := int(math.Round((maxY - y) / (maxY - minY) * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	colOf := func(x float64) int {
		c := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	if drawRef {
		rr := rowOf(refY)
		for c := 0; c < width; c++ {
			grid[rr][c] = '-'
		}
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			grid[rowOf(s.Y[i])][colOf(s.X[i])] = mark
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c %s", markers[si%len(markers)], s.Name)
	}
	sb.WriteByte('\n')
	for r, line := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%.4g", maxY)
		case height - 1:
			label = fmt.Sprintf("%.4g", minY)
		}
		fmt.Fprintf(&sb, "%10s |%s|\n", label, line)
	}
	fmt.Fprintf(&sb, "%10s  %-*s%s\n", "", width-len(fmt.Sprintf("%.4g", maxX)), fmt.Sprintf("%.4g", minX), fmt.Sprintf("%.4g", maxX))
	return sb.String()
}

// SeriesCSV renders series as long-form CSV (name,x,y).
func SeriesCSV(series []Series) string {
	var sb strings.Builder
	sb.WriteString("series,x,y\n")
	for _, s := range series {
		for i := range s.X {
			fmt.Fprintf(&sb, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i])
		}
	}
	return sb.String()
}

// RangeChart renders per-label value distributions as horizontal range
// bars — the text stand-in for the paper's violin plots. Each row shows
// min…max with the quartile box and median marked, against a reference
// line at ref (1.0 for speedups).
func RangeChart(title string, labels []string, samples map[string][]float64, ref float64) string {
	const width = 60
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, vs := range samples {
		for _, v := range vs {
			minV, maxV = math.Min(minV, v), math.Max(maxV, v)
		}
	}
	minV = math.Min(minV, ref)
	maxV = math.Max(maxV, ref)
	if minV > maxV {
		return title + "\n(no data)\n"
	}
	span := maxV - minV
	if span == 0 {
		span = 1
	}
	colOf := func(v float64) int {
		c := int(math.Round((v - minV) / span * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-12s %-*s  %s\n", "", width, fmt.Sprintf("%.4f%*s%.4f", minV, width-16, "", maxV), "min..med..max")
	sorted := append([]string(nil), labels...)
	sort.Strings(sorted)
	for _, label := range sorted {
		vs := samples[label]
		if len(vs) == 0 {
			continue
		}
		s := stats.Summarize(vs)
		line := []byte(strings.Repeat(" ", width))
		line[colOf(ref)] = '|'
		for c := colOf(s.Min); c <= colOf(s.Max); c++ {
			if line[c] == ' ' {
				line[c] = '-'
			}
		}
		for c := colOf(s.Q1); c <= colOf(s.Q3); c++ {
			line[c] = '='
		}
		line[colOf(s.Median)] = 'M'
		fmt.Fprintf(&sb, "%-12s %s  %.4f %.4f %.4f\n", label, line, s.Min, s.Median, s.Max)
	}
	fmt.Fprintf(&sb, "%-12s %s\n", "", "(| marks "+fmt.Sprintf("%.2f", ref)+"; = is the interquartile box; M the median)")
	return sb.String()
}

// DistributionCSV renders labelled samples as long-form CSV.
func DistributionCSV(samples map[string][]float64) string {
	var sb strings.Builder
	sb.WriteString("label,value\n")
	labels := make([]string, 0, len(samples))
	for l := range samples {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		for _, v := range samples[l] {
			fmt.Fprintf(&sb, "%s,%g\n", l, v)
		}
	}
	return sb.String()
}

// IntervalChart renders labelled point estimates with confidence intervals,
// used by the setup-randomization figure.
func IntervalChart(title string, labels []string, means map[string]float64, intervals map[string]stats.Interval, ref float64) string {
	const width = 60
	minV, maxV := ref, ref
	for _, l := range labels {
		iv := intervals[l]
		minV = math.Min(minV, iv.Lo)
		maxV = math.Max(maxV, iv.Hi)
	}
	span := maxV - minV
	if span == 0 {
		span = 1
	}
	colOf := func(v float64) int {
		c := int(math.Round((v - minV) / span * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for _, label := range labels {
		iv := intervals[label]
		line := []byte(strings.Repeat(" ", width))
		line[colOf(ref)] = '|'
		for c := colOf(iv.Lo); c <= colOf(iv.Hi); c++ {
			if line[c] == ' ' {
				line[c] = '='
			}
		}
		line[colOf(means[label])] = 'O'
		fmt.Fprintf(&sb, "%-12s %s  %.4f %v\n", label, line, means[label], iv)
	}
	return sb.String()
}
