// Package spec implements declarative bias-on-demand experiment files:
// one JSON document that states, per bias channel, whether the factor is
// swept (expose the bias), randomized (the paper's remedy), or fixed (the
// crime, stated honestly), and compiles into the server.JobSpec jobs that
// realize it. The compiler is deliberately dumb — every channel block maps
// onto existing job kinds — so a declarative file can never request work
// the daemon, the cluster, and the auditor do not already understand.
//
// Schema, by example:
//
//	{
//	  "bench": "hmmer",
//	  "machine": "core2",
//	  "size": "test",
//	  "context": "serving",
//	  "channels": {
//	    "env":    {"mode": "swept", "step": 128},
//	    "link":   {"mode": "randomized"},
//	    "pad":    {"mode": "randomized"},
//	    "base":   {"mode": "fixed"},
//	    "tenant": {"mode": "swept", "co_level": "O2", "quantum": 4096}
//	  },
//	  "randomize": {"n": 16, "seed": 1}
//	}
//
// Channels left out of the map are implicitly fixed at their defaults —
// an unmentioned factor IS a fixed factor; the schema just lets you say
// so out loud. "context" declares the deployment context the conclusion
// claims (judged by the auditor, never measured); "audit_allow" carries
// rule suppressions onto every compiled job.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"biaslab/internal/bench"
	"biaslab/internal/channels"
	"biaslab/internal/machine"
	"biaslab/internal/server"
)

// Channel modes.
const (
	ModeSwept      = "swept"
	ModeRandomized = "randomized"
	ModeFixed      = "fixed"
)

// CRITICAL: DEFAULT VALUES ARE EXPLICIT AND NON-ZERO. A channel block
// that omits a parameter gets the same default the equivalent CLI flag
// has always had — NOT the Go zero value. In particular:
//
//	step     128  (not 0! a zero step would be an empty sweep)
//	orders   16   (not 0!)
//	seed     1    (not 0! seed 0 means "default", never "zero stream")
//	n        16   (not 0, and not 1 — n=1 is the single-setup crime)
//	co_level "O2" (not ""! the co-runner is a program, it has a level)
//
// The quantum's default (tenancy.DefaultQuantum) is applied by
// JobSpec.Canonicalize, the single place co-run defaults live.
const (
	DefaultStep   = 128
	DefaultOrders = 16
	DefaultSeed   = 1
	DefaultN      = 16
)

// ChannelSpec is one channel block: a mode plus the channel's parameters.
// Which parameters are legal depends on the channel; Validate rejects
// mismatches rather than ignoring them.
type ChannelSpec struct {
	// Mode is swept, randomized, or fixed.
	Mode string `json:"mode"`
	// Step is the env sweep's grid step (env, swept; default 128).
	Step uint64 `json:"step,omitempty"`
	// EnvBytes fixes the environment size (env, fixed; default 512).
	EnvBytes uint64 `json:"env_bytes,omitempty"`
	// Orders and Seed parameterize the link sweep (link, swept).
	Orders int    `json:"orders,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	// Adaptive selects the oracle/comparator-guided sweep (env, pad,
	// base; swept).
	Adaptive bool `json:"adaptive,omitempty"`
	// CoBench pins the co-runner (tenant, fixed — the interference
	// crime).
	CoBench string `json:"co_bench,omitempty"`
	// CoLevel and Quantum are the co-run parameters (tenant, any mode).
	CoLevel string `json:"co_level,omitempty"`
	Quantum uint64 `json:"quantum,omitempty"`
}

// RandomizeSpec parameterizes the one randomize job that absorbs every
// randomized channel.
type RandomizeSpec struct {
	N    int     `json:"n,omitempty"`
	Seed uint64  `json:"seed,omitempty"`
	Tol  float64 `json:"tol,omitempty"`
}

// File is one declarative bias-on-demand experiment.
type File struct {
	Bench       string                 `json:"bench"`
	Machine     string                 `json:"machine,omitempty"`
	Size        string                 `json:"size,omitempty"`
	Personality string                 `json:"personality,omitempty"`
	Context     string                 `json:"context,omitempty"`
	Channels    map[string]ChannelSpec `json:"channels"`
	Randomize   *RandomizeSpec         `json:"randomize,omitempty"`
	AuditAllow  []string               `json:"audit_allow,omitempty"`
}

// Parse decodes one declarative spec document. Unknown fields are errors:
// a bias experiment description with a typo in it must not silently mean
// something else. Whole-line `//` comments are allowed, matching the
// audit spec-file convention, and `//audit:allow <rule>` directives fold
// into the file's audit_allow field so they ride onto every compiled job.
func Parse(raw []byte) (*File, error) {
	stripped, allow := stripComments(raw)
	var f File
	dec := json.NewDecoder(bytes.NewReader(stripped))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	f.AuditAllow = append(f.AuditAllow, allow...)
	return &f, nil
}

// allowPrefix introduces a suppression directive, as in audit spec files.
const allowPrefix = "//audit:allow"

// stripComments drops whole-line `//` comments and collects
// //audit:allow directives. Rule ids are not validated here — the audit
// package owns the catalog (and imports this one, so it cannot be asked);
// unknown ids are caught the moment the file is audited.
func stripComments(raw []byte) ([]byte, []string) {
	var out bytes.Buffer
	var allow []string
	for _, line := range strings.Split(string(raw), "\n") {
		t := strings.TrimSpace(line)
		if strings.HasPrefix(t, allowPrefix) {
			if rule := strings.TrimSpace(strings.TrimPrefix(t, allowPrefix)); rule != "" {
				allow = append(allow, rule)
			}
			continue
		}
		if strings.HasPrefix(t, "//") {
			continue
		}
		out.WriteString(line)
		out.WriteString("\n")
	}
	return out.Bytes(), allow
}

// ParseFile reads and decodes path.
func ParseFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// IsDeclarative reports whether raw looks like a declarative spec file
// (it has a "channels" object) rather than a plain JobSpec document.
func IsDeclarative(raw []byte) bool {
	var probe struct {
		Channels json.RawMessage `json:"channels"`
	}
	stripped, _ := stripComments(raw)
	if err := json.Unmarshal(stripped, &probe); err != nil {
		return false
	}
	return len(probe.Channels) > 0
}

// Validate checks the file against the channel registry and compiles it;
// the error carries the first problem found.
func (f *File) Validate() error {
	_, err := f.Compile()
	return err
}

// Compile lowers the declarative file into the jobs that realize it, in
// registry order: one sweep job per swept channel, then one randomize job
// absorbing every randomized channel, then — when nothing is swept or
// randomized — the single fixed-setup run the file is honest enough to
// admit to. Every compiled spec round-trips through Canonicalize here, so
// a file that compiles is a file the daemon will accept.
func (f *File) Compile() ([]server.JobSpec, error) {
	if f.Bench == "" {
		return nil, fmt.Errorf("spec: missing bench")
	}
	if _, ok := bench.ByName(f.Bench); !ok {
		return nil, fmt.Errorf("spec: unknown benchmark %q", f.Bench)
	}
	if f.Machine != "" {
		if _, ok := machine.ConfigByName(f.Machine); !ok {
			return nil, fmt.Errorf("spec: unknown machine %q", f.Machine)
		}
	}
	if len(f.Channels) == 0 {
		return nil, fmt.Errorf("spec: empty channels map: declare at least one channel as swept, randomized or fixed")
	}
	for name, ch := range f.Channels {
		if _, ok := channels.ByName(name); !ok {
			return nil, fmt.Errorf("spec: unknown channel %q (registry: %v)", name, channels.Names())
		}
		if err := checkChannel(name, ch); err != nil {
			return nil, err
		}
	}

	base := server.JobSpec{
		Size:        f.Size,
		Bench:       f.Bench,
		Machine:     f.Machine,
		Personality: f.Personality,
		Context:     f.Context,
		AuditAllow:  f.AuditAllow,
	}
	var jobs []server.JobSpec
	randomized := false
	// Registry order, not map order: compilation must be deterministic.
	for _, reg := range channels.All() {
		ch, ok := f.Channels[reg.Name]
		if !ok {
			continue // unmentioned = fixed at defaults
		}
		switch ch.Mode {
		case ModeRandomized:
			randomized = true
		case ModeSwept:
			job := base
			job.Kind = reg.JobKind
			switch reg.Name {
			case "env":
				job.Step = ch.Step
				if job.Step == 0 {
					job.Step = DefaultStep
				}
				job.Adaptive = ch.Adaptive
			case "link":
				job.Orders = ch.Orders
				if job.Orders == 0 {
					job.Orders = DefaultOrders
				}
				job.Seed = ch.Seed
				if job.Seed == 0 {
					job.Seed = DefaultSeed
				}
			case "pad", "base":
				job.Adaptive = ch.Adaptive
			case "tenant":
				job.CoLevel = ch.CoLevel
				job.Quantum = ch.Quantum
			}
			jobs = append(jobs, job)
		}
	}
	envCh := f.Channels["env"]
	tenantCh := f.Channels["tenant"]
	if randomized {
		job := base
		job.Kind = server.KindRandomize
		job.N = DefaultN
		job.Seed = DefaultSeed
		if f.Randomize != nil {
			if f.Randomize.N != 0 {
				job.N = f.Randomize.N
			}
			if f.Randomize.Seed != 0 {
				job.Seed = f.Randomize.Seed
			}
			job.Tol = f.Randomize.Tol
		}
		if tenantCh.Mode == ModeRandomized {
			job.CoRandom = true
			job.CoLevel = tenantCh.CoLevel
			job.Quantum = tenantCh.Quantum
		} else if tenantCh.Mode == ModeFixed && tenantCh.CoBench != "" {
			// A fixed tenant under an otherwise randomized experiment:
			// exactly what the fixed-corunner-sensitive audit rule exists
			// to catch. Compiled faithfully, not silently repaired.
			job.CoBench = tenantCh.CoBench
			job.CoLevel = tenantCh.CoLevel
			job.Quantum = tenantCh.Quantum
		}
		jobs = append(jobs, job)
	} else if len(jobs) == 0 {
		// Nothing swept, nothing randomized: one fixed-setup run.
		job := base
		job.Kind = server.KindRun
		job.EnvBytes = envCh.EnvBytes
		if tenantCh.CoBench != "" {
			job.CoBench = tenantCh.CoBench
			job.CoLevel = tenantCh.CoLevel
			job.Quantum = tenantCh.Quantum
		}
		jobs = append(jobs, job)
	}
	for i, job := range jobs {
		if _, err := job.Canonicalize(); err != nil {
			return nil, fmt.Errorf("spec: compiled job %d (%s): %w", i, job.Kind, err)
		}
	}
	return jobs, nil
}

// checkChannel validates one channel block: a legal mode, and only the
// parameters that mean something for (channel, mode).
func checkChannel(name string, ch ChannelSpec) error {
	switch ch.Mode {
	case ModeSwept, ModeRandomized, ModeFixed:
	case "":
		return fmt.Errorf("spec: channel %q: missing mode (swept, randomized or fixed)", name)
	default:
		return fmt.Errorf("spec: channel %q: unknown mode %q (want swept, randomized or fixed)", name, ch.Mode)
	}
	type field struct {
		set  bool
		name string
		ok   bool
	}
	fields := []field{
		{ch.Step != 0, "step", name == "env" && ch.Mode == ModeSwept},
		{ch.EnvBytes != 0, "env_bytes", name == "env" && ch.Mode == ModeFixed},
		{ch.Orders != 0, "orders", name == "link" && ch.Mode == ModeSwept},
		{ch.Seed != 0, "seed", name == "link" && ch.Mode == ModeSwept},
		{ch.Adaptive, "adaptive", (name == "env" || name == "pad" || name == "base") && ch.Mode == ModeSwept},
		{ch.CoBench != "", "co_bench", name == "tenant" && ch.Mode == ModeFixed},
		{ch.CoLevel != "", "co_level", name == "tenant"},
		{ch.Quantum != 0, "quantum", name == "tenant"},
	}
	if name == "tenant" && ch.Mode == ModeRandomized && ch.CoBench != "" {
		return fmt.Errorf("spec: channel \"tenant\" (randomized): co_bench would fix the tenant; drop it or use mode \"fixed\"")
	}
	for _, fl := range fields {
		if fl.set && !fl.ok {
			return fmt.Errorf("spec: channel %q (%s): parameter %q does not apply", name, ch.Mode, fl.name)
		}
	}
	if name == "tenant" && ch.CoBench != "" {
		if _, ok := bench.ByName(ch.CoBench); !ok {
			return fmt.Errorf("spec: channel \"tenant\": unknown co-runner benchmark %q", ch.CoBench)
		}
	}
	return nil
}
