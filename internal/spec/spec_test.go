package spec_test

import (
	"strings"
	"testing"

	"biaslab/internal/server"
	"biaslab/internal/spec"
	"biaslab/internal/tenancy"
)

// minimal returns a parseable file body with the given channels block.
func minimal(channels string) []byte {
	return []byte(`{"bench": "hmmer", "machine": "core2", "size": "test", "channels": {` + channels + `}}`)
}

func mustCompile(t *testing.T, raw []byte) []server.JobSpec {
	t.Helper()
	f, err := spec.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestParseCommentsAndAllow: whole-line comments are stripped and
// //audit:allow directives fold into the audit_allow field, so the
// suppression rides onto every compiled job.
func TestParseCommentsAndAllow(t *testing.T) {
	raw := []byte(`// a comment
//audit:allow single-setup
{"bench": "hmmer", "size": "test",
 // interior comment
 "channels": {"env": {"mode": "swept"}}}`)
	f, err := spec.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.AuditAllow) != 1 || f.AuditAllow[0] != "single-setup" {
		t.Fatalf("AuditAllow = %v, want [single-setup]", f.AuditAllow)
	}
	jobs, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || len(jobs[0].AuditAllow) != 1 {
		t.Fatalf("compiled jobs = %+v, want one job carrying the suppression", jobs)
	}
}

// TestParseUnknownField: a typo must be an error, never silently ignored.
func TestParseUnknownField(t *testing.T) {
	_, err := spec.Parse([]byte(`{"bench": "hmmer", "chanels": {}}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestIsDeclarative(t *testing.T) {
	if !spec.IsDeclarative(minimal(`"env": {"mode": "swept"}`)) {
		t.Error("declarative file not detected")
	}
	if !spec.IsDeclarative([]byte("// comment\n" + string(minimal(`"env": {"mode": "swept"}`)))) {
		t.Error("commented declarative file not detected")
	}
	if spec.IsDeclarative([]byte(`{"kind": "randomize", "bench": "hmmer", "n": 16}`)) {
		t.Error("plain JobSpec misdetected as declarative")
	}
	if spec.IsDeclarative([]byte(`not json`)) {
		t.Error("garbage misdetected as declarative")
	}
}

// TestCompileSweptOrder: one sweep job per swept channel, emitted in
// registry order regardless of map order, with the CLI's historical
// defaults filled in explicitly.
func TestCompileSweptOrder(t *testing.T) {
	jobs := mustCompile(t, minimal(
		`"tenant": {"mode": "swept"}, "link": {"mode": "swept"}, "env": {"mode": "swept"}`))
	var kinds []string
	for _, j := range jobs {
		kinds = append(kinds, j.Kind)
	}
	want := []string{server.KindSweepEnv, server.KindSweepLink, server.KindSweepTenant}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("kinds = %v, want %v (registry order)", kinds, want)
	}
	if jobs[0].Step != spec.DefaultStep {
		t.Errorf("env step = %d, want default %d", jobs[0].Step, spec.DefaultStep)
	}
	if jobs[1].Orders != spec.DefaultOrders || jobs[1].Seed != spec.DefaultSeed {
		t.Errorf("link orders/seed = %d/%d, want defaults %d/%d",
			jobs[1].Orders, jobs[1].Seed, spec.DefaultOrders, spec.DefaultSeed)
	}
}

// TestCompileRandomized: any randomized channel produces exactly one
// randomize job; a randomized tenant sets co_random on it.
func TestCompileRandomized(t *testing.T) {
	jobs := mustCompile(t, minimal(
		`"env": {"mode": "randomized"}, "tenant": {"mode": "randomized", "quantum": 1024}`))
	if len(jobs) != 1 {
		t.Fatalf("got %d jobs, want 1", len(jobs))
	}
	j := jobs[0]
	if j.Kind != server.KindRandomize || !j.CoRandom {
		t.Fatalf("job = %+v, want randomize with co_random", j)
	}
	if j.N != spec.DefaultN || j.Seed != spec.DefaultSeed {
		t.Errorf("n/seed = %d/%d, want defaults %d/%d", j.N, j.Seed, spec.DefaultN, spec.DefaultSeed)
	}
	if j.Quantum != 1024 {
		t.Errorf("quantum = %d, want 1024", j.Quantum)
	}
	c, err := j.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.CoLevel != "O2" {
		t.Errorf("canonical co_level = %q, want O2", c.CoLevel)
	}
}

// TestCompileFixedTenantOnRandomize: a fixed co_bench under an otherwise
// randomized experiment compiles faithfully — the crime is the auditor's
// to flag, not the compiler's to repair.
func TestCompileFixedTenantOnRandomize(t *testing.T) {
	jobs := mustCompile(t, minimal(
		`"env": {"mode": "randomized"}, "tenant": {"mode": "fixed", "co_bench": "milc"}`))
	if len(jobs) != 1 || jobs[0].CoBench != "milc" || jobs[0].CoRandom {
		t.Fatalf("jobs = %+v, want one randomize job with co_bench=milc", jobs)
	}
}

// TestCompileAllFixed: nothing swept or randomized lowers to a single
// fixed-setup run carrying the fixed channels' values.
func TestCompileAllFixed(t *testing.T) {
	jobs := mustCompile(t, minimal(
		`"env": {"mode": "fixed", "env_bytes": 768}, "tenant": {"mode": "fixed", "co_bench": "lbm"}`))
	if len(jobs) != 1 {
		t.Fatalf("got %d jobs, want 1", len(jobs))
	}
	j := jobs[0]
	if j.Kind != server.KindRun || j.EnvBytes != 768 || j.CoBench != "lbm" {
		t.Fatalf("job = %+v, want run with env_bytes=768 co_bench=lbm", j)
	}
	c, err := j.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Quantum != tenancy.DefaultQuantum {
		t.Errorf("canonical quantum = %d, want default %d", c.Quantum, tenancy.DefaultQuantum)
	}
}

// TestCompileErrors: the schema rejects, with a named reason, everything
// it cannot faithfully lower.
func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		want string
	}{
		{"missing bench", `{"channels": {"env": {"mode": "swept"}}}`, "missing bench"},
		{"unknown bench", `{"bench": "nope", "channels": {"env": {"mode": "swept"}}}`, "unknown benchmark"},
		{"unknown machine", `{"bench": "hmmer", "machine": "z80", "channels": {"env": {"mode": "swept"}}}`, "unknown machine"},
		{"empty channels", `{"bench": "hmmer", "channels": {}}`, "empty channels"},
		{"unknown channel", `{"bench": "hmmer", "channels": {"moonphase": {"mode": "swept"}}}`, "unknown channel"},
		{"missing mode", `{"bench": "hmmer", "channels": {"env": {}}}`, "missing mode"},
		{"unknown mode", `{"bench": "hmmer", "channels": {"env": {"mode": "jittered"}}}`, "unknown mode"},
		{"inapplicable param", `{"bench": "hmmer", "channels": {"link": {"mode": "swept", "step": 8}}}`, "does not apply"},
		{"randomized tenant pinned", `{"bench": "hmmer", "channels": {"tenant": {"mode": "randomized", "co_bench": "mcf"}}}`, "co_bench would fix the tenant"},
		{"unknown co-runner", `{"bench": "hmmer", "channels": {"tenant": {"mode": "fixed", "co_bench": "doom"}}}`, "unknown co-runner"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := spec.Parse([]byte(tc.raw))
			if err != nil {
				t.Fatal(err)
			}
			err = f.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}
