// Package survey reproduces the paper's literature survey: an audit of 133
// papers from ASPLOS, PACT, PLDI and CGO asking whether published
// evaluations report or control the experimental-setup factors that the
// paper shows can bias results.
//
// The original per-paper data was never published; what the paper reports
// are the aggregates — above all, that **none** of the 133 surveyed papers
// reports environment size or link order, and essentially none addresses
// measurement bias at all. This package therefore carries a deterministic
// synthetic dataset whose aggregates match the published claims (documented
// in EXPERIMENTS.md as a substitution), plus the analysis code that reduces
// per-paper records to the summary table — so a user with the real data
// could drop it in and regenerate the exact table.
package survey

import (
	"fmt"
	"sort"
	"strings"

	"biaslab/internal/stats"
)

// Venue is a publication venue.
type Venue string

// The four venues the paper surveyed.
const (
	ASPLOS Venue = "ASPLOS"
	PACT   Venue = "PACT"
	PLDI   Venue = "PLDI"
	CGO    Venue = "CGO"
)

// Paper is one surveyed publication's methodology record.
type Paper struct {
	ID    int
	Venue Venue
	Year  int

	// UsesSpeedup: evaluates using execution-time/speedup measurements
	// (papers that don't are excluded from most denominators).
	UsesSpeedup bool
	// Platforms is the number of distinct hardware platforms evaluated on.
	Platforms int
	// ReportsCompilerVersion / ReportsCompilerFlags: basic toolchain
	// reporting hygiene.
	ReportsCompilerVersion bool
	ReportsCompilerFlags   bool
	// ReportsEnvironment / ReportsLinkOrder: the two bias factors the
	// paper studies. Zero papers in the survey report either.
	ReportsEnvironment bool
	ReportsLinkOrder   bool
	// UsesStatistics: reports variance, confidence intervals, or any
	// statistical treatment of measurements.
	UsesStatistics bool
	// AddressesBias: discusses or controls for measurement bias.
	AddressesBias bool
}

// venueQuota fixes how many surveyed papers came from each venue (133 in
// total, matching the paper's count).
var venueQuota = []struct {
	venue Venue
	year  int
	count int
}{
	{ASPLOS, 2008, 31},
	{PACT, 2007, 33},
	{PLDI, 2007, 45},
	{CGO, 2007, 24},
}

// Dataset returns the 133-paper synthetic dataset. It is deterministic:
// attribute frequencies are fixed and assigned by a seeded generator, and
// the aggregates the paper states exactly (none report environment or link
// order) hold by construction.
func Dataset() []Paper {
	rng := stats.NewRNG(0x5EED5)
	papers := make([]Paper, 0, 133)
	id := 1
	for _, q := range venueQuota {
		for i := 0; i < q.count; i++ {
			p := Paper{ID: id, Venue: q.venue, Year: q.year}
			id++
			// ~87% of systems papers evaluate with time-based measurements.
			p.UsesSpeedup = rng.Float64() < 0.87
			if p.UsesSpeedup {
				// Most papers evaluate on exactly one platform.
				switch {
				case rng.Float64() < 0.70:
					p.Platforms = 1
				case rng.Float64() < 0.80:
					p.Platforms = 2
				default:
					p.Platforms = 3
				}
				p.ReportsCompilerFlags = rng.Float64() < 0.55
				p.ReportsCompilerVersion = p.ReportsCompilerFlags && rng.Float64() < 0.60
				p.UsesStatistics = rng.Float64() < 0.12
				// By the paper's central finding, these are always false.
				p.ReportsEnvironment = false
				p.ReportsLinkOrder = false
				p.AddressesBias = false
			}
			papers = append(papers, p)
		}
	}
	return papers
}

// Summary is the reduced form of the survey: the paper's summary table.
type Summary struct {
	Total       int
	PerVenue    map[Venue]int
	UsesSpeedup int

	SinglePlatform int // among UsesSpeedup
	MultiPlatform  int
	ReportsVersion int
	ReportsFlags   int
	ReportsEnv     int
	ReportsLink    int
	UsesStatistics int
	AddressesBias  int
}

// Summarize reduces per-paper records to the summary.
func Summarize(papers []Paper) Summary {
	s := Summary{Total: len(papers), PerVenue: map[Venue]int{}}
	for _, p := range papers {
		s.PerVenue[p.Venue]++
		if !p.UsesSpeedup {
			continue
		}
		s.UsesSpeedup++
		if p.Platforms <= 1 {
			s.SinglePlatform++
		} else {
			s.MultiPlatform++
		}
		if p.ReportsCompilerVersion {
			s.ReportsVersion++
		}
		if p.ReportsCompilerFlags {
			s.ReportsFlags++
		}
		if p.ReportsEnvironment {
			s.ReportsEnv++
		}
		if p.ReportsLinkOrder {
			s.ReportsLink++
		}
		if p.UsesStatistics {
			s.UsesStatistics++
		}
		if p.AddressesBias {
			s.AddressesBias++
		}
	}
	return s
}

// pct renders n as a percentage of the speedup-paper denominator.
func (s Summary) pct(n int) string {
	if s.UsesSpeedup == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%3.0f%%", 100*float64(n)/float64(s.UsesSpeedup))
}

// Table renders the summary as the survey table.
func (s Summary) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Literature survey: %d papers", s.Total)
	venues := make([]string, 0, len(s.PerVenue))
	for v, c := range s.PerVenue {
		venues = append(venues, fmt.Sprintf("%s %d", v, c))
	}
	sort.Strings(venues)
	fmt.Fprintf(&sb, " (%s)\n\n", strings.Join(venues, ", "))
	fmt.Fprintf(&sb, "%-52s %5s %5s\n", "criterion", "count", "share")
	row := func(label string, n int) {
		fmt.Fprintf(&sb, "%-52s %5d %5s\n", label, n, s.pct(n))
	}
	fmt.Fprintf(&sb, "%-52s %5d\n", "papers with time/speedup-based evaluation", s.UsesSpeedup)
	row("  evaluated on a single hardware platform", s.SinglePlatform)
	row("  evaluated on multiple platforms", s.MultiPlatform)
	row("  report compiler flags", s.ReportsFlags)
	row("  report compiler version", s.ReportsVersion)
	row("  report any statistical treatment", s.UsesStatistics)
	row("  report UNIX environment (bias factor #1)", s.ReportsEnv)
	row("  report link order (bias factor #2)", s.ReportsLink)
	row("  address measurement bias at all", s.AddressesBias)
	return sb.String()
}

// Filter returns the papers matching pred.
func Filter(papers []Paper, pred func(Paper) bool) []Paper {
	var out []Paper
	for _, p := range papers {
		if pred(p) {
			out = append(out, p)
		}
	}
	return out
}
