package survey

import (
	"strings"
	"testing"
)

func TestDatasetShape(t *testing.T) {
	papers := Dataset()
	if len(papers) != 133 {
		t.Fatalf("dataset has %d papers, want 133", len(papers))
	}
	venues := map[Venue]int{}
	ids := map[int]bool{}
	for _, p := range papers {
		venues[p.Venue]++
		if ids[p.ID] {
			t.Errorf("duplicate id %d", p.ID)
		}
		ids[p.ID] = true
	}
	if venues[ASPLOS] != 31 || venues[PACT] != 33 || venues[PLDI] != 45 || venues[CGO] != 24 {
		t.Errorf("venue quotas wrong: %v", venues)
	}
}

// TestCentralFinding pins the survey's headline numbers: no surveyed paper
// reports environment size or link order, or addresses measurement bias.
func TestCentralFinding(t *testing.T) {
	for _, p := range Dataset() {
		if p.ReportsEnvironment || p.ReportsLinkOrder || p.AddressesBias {
			t.Fatalf("paper %d violates the survey's central finding", p.ID)
		}
	}
}

func TestDatasetDeterministic(t *testing.T) {
	a, b := Dataset(), Dataset()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("dataset not deterministic")
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(Dataset())
	if s.Total != 133 {
		t.Errorf("total = %d", s.Total)
	}
	if s.UsesSpeedup == 0 || s.UsesSpeedup > 133 {
		t.Errorf("speedup count implausible: %d", s.UsesSpeedup)
	}
	if s.SinglePlatform+s.MultiPlatform != s.UsesSpeedup {
		t.Error("platform split doesn't add up")
	}
	if s.ReportsEnv != 0 || s.ReportsLink != 0 || s.AddressesBias != 0 {
		t.Error("summary contradicts central finding")
	}
	if s.SinglePlatform <= s.MultiPlatform {
		t.Error("most papers should be single-platform")
	}
	if s.ReportsVersion > s.ReportsFlags {
		t.Error("version reporting should imply flag reporting")
	}
}

func TestTableRendering(t *testing.T) {
	table := Summarize(Dataset()).Table()
	for _, want := range []string{"133 papers", "ASPLOS 31", "link order", "environment", "0%"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestFilter(t *testing.T) {
	papers := Dataset()
	pldi := Filter(papers, func(p Paper) bool { return p.Venue == PLDI })
	if len(pldi) != 45 {
		t.Errorf("PLDI filter = %d, want 45", len(pldi))
	}
	none := Filter(papers, func(p Paper) bool { return p.ReportsLinkOrder })
	if len(none) != 0 {
		t.Error("link-order filter should be empty")
	}
}
