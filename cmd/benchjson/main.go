// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, one record per benchmark result line. CI uses it
// to publish the throughput numbers (BENCH_6.json) as a diffable artifact;
// it has no knowledge of specific benchmarks and passes every metric pair
// through verbatim.
//
// A benchmark line has the shape
//
//	BenchmarkSimulator-8   3   27026000 ns/op   80.7 Minstr/s   147 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs. Everything else
// (experiment artifacts printed by the benchmarks, PASS/ok trailers) is
// ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line; ok is false for any line that
// is not one (artifact output, headers, PASS/ok trailers).
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{
		// Strip the -GOMAXPROCS suffix so records compare across runners.
		Name:       strings.TrimSuffix(fields[0], "-"+lastDashPart(fields[0])),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return result{}, false
	}
	return r, true
}

// lastDashPart returns the text after the final '-' when it is numeric (the
// GOMAXPROCS suffix), else an impossible sentinel so TrimSuffix is a no-op.
func lastDashPart(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return "\x00"
	}
	if _, err := strconv.ParseInt(name[i+1:], 10, 64); err != nil {
		return "\x00"
	}
	return name[i+1:]
}
