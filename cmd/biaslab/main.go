// Command biaslab runs measurement-bias experiments from the command line
// and regenerates every table and figure of the paper's evaluation.
//
// Usage:
//
//	biaslab run -bench perlbench -machine core2 [-env 512] [-O2|-O3] [-icc] [-co-bench milc]
//	biaslab sweep-env -bench perlbench -machine core2 [-step 128] [-adaptive]
//	biaslab sweep-pad -bench hmmer -machine core2 [-adaptive]
//	biaslab sweep-base -bench hmmer -machine core2 [-adaptive]
//	biaslab sweep-link -bench gcc -machine core2 [-orders 16]
//	biaslab sweep-tenant -bench hmmer -machine core2 [-co-level O2] [-quantum 4096]
//	biaslab randomize -bench perlbench -machine core2 [-n 16] [-co-random|-co-bench milc]
//	biaslab spec run|expand|validate specs.json
//	biaslab causal -bench perlbench -machine core2
//	biaslab vet [files.cm...]
//	biaslab audit specs/*.json     # flag benchmarking crimes; exit 1 on findings
//	biaslab predict -bench hmmer -machine core2 [-channel env|pad|base] [-step 8] [-perms 24] [-json]
//	biaslab survey
//	biaslab experiment F3          # any of F1–F9, T1–T4
//	biaslab all                    # every experiment, in order
//	biaslab list                   # benchmarks, machines, experiments
//
// Global flags (before the subcommand): -size test|small|ref, -csv,
// -json, -timeout, -journal, -resume, -server.
//
// With -server URL, run/sweep-*/randomize/experiment/all/list
// execute on a biaslabd daemon instead of in-process: the job is submitted
// over HTTP, per-point progress streams to stderr, and the stored result is
// rendered through the same code paths as a local run — so remote output is
// byte-identical to local output, and resubmitting an identical command is
// a cache hit that performs zero new measurements. With -json, the
// canonical result JSON (exactly the daemon's stored bytes) is printed
// instead of rendered text.
//
// Interrupting a journalled run (Ctrl-C, SIGTERM, a timeout, or a hard
// kill) loses nothing: every completed measurement point is already on
// disk, and rerunning the same command with -resume replays the recorded
// points and measures only the missing ones, producing output identical
// to an uninterrupted run.
//
// Exit codes: 0 success, 1 failure, 2 usage error, 124 deadline exceeded,
// 130 interrupted.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"biaslab"
	"biaslab/internal/bench"
	"biaslab/internal/channels"
	"biaslab/internal/compiler"
	"biaslab/internal/report"
	"biaslab/internal/server"
	"biaslab/internal/server/client"
	"biaslab/internal/survey"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// usageError marks errors that should exit 2 (bad invocation, not a
// failed experiment).
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

func usageErrorf(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// exitCode maps an error to the process exit status.
func exitCode(err error) int {
	var ue usageError
	switch {
	case err == nil:
		return 0
	case errors.As(err, &ue), errors.Is(err, flag.ErrHelp):
		return 2
	case errors.Is(err, context.DeadlineExceeded):
		return 124
	case errors.Is(err, context.Canceled):
		return 130
	}
	return 1
}

type app struct {
	ctx     context.Context
	size    biaslab.Size
	csv     bool
	jsonOut bool
	outDir  string
	server  string             // biaslabd base URL; "" means run locally
	ck      biaslab.Checkpoint // nil without -journal
}

func run(args []string) int {
	global := flag.NewFlagSet("biaslab", flag.ContinueOnError)
	sizeName := global.String("size", "small", "workload size: test, small, ref")
	csv := global.Bool("csv", false, "emit CSV instead of rendered text where available")
	jsonOut := global.Bool("json", false, "emit the canonical JSON result instead of rendered text")
	serverURL := global.String("server", "", "submit the job to a biaslabd daemon at this URL instead of measuring locally")
	outDir := global.String("out", "", "also write each experiment artifact (text + CSV) into this directory")
	timeout := global.Duration("timeout", 0, "abort the whole invocation after this long (e.g. 10m); 0 disables")
	journalPath := global.String("journal", "", "checkpoint completed measurement points into this JSONL file")
	resume := global.Bool("resume", false, "continue from an existing -journal instead of refusing to reuse it")
	global.Usage = usage
	err := func() error {
		if err := global.Parse(args); err != nil {
			return usageError{err}
		}
		rest := global.Args()
		if len(rest) == 0 {
			usage()
			return usageErrorf("missing subcommand")
		}
		size, err := parseSize(*sizeName)
		if err != nil {
			return usageError{err}
		}

		// Ctrl-C / SIGTERM cancel the context; in-flight measurements stop
		// at the next watchdog poll, journalled points are already synced,
		// and the run exits 130 ready to be resumed.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}

		a := &app{ctx: ctx, size: size, csv: *csv, jsonOut: *jsonOut, outDir: *outDir, server: *serverURL}
		if *csv && *jsonOut {
			return usageErrorf("-csv and -json are mutually exclusive")
		}
		if *serverURL != "" && *journalPath != "" {
			return usageErrorf("-server and -journal are mutually exclusive: the daemon keeps its own per-job journals")
		}
		if *resume && *journalPath == "" {
			return usageErrorf("-resume requires -journal")
		}
		if *journalPath != "" {
			if !*resume {
				if st, err := os.Stat(*journalPath); err == nil && st.Size() > 0 {
					return usageErrorf("journal %s already has recorded points; pass -resume to continue it or remove the file", *journalPath)
				}
			}
			j, err := biaslab.OpenJournal(*journalPath)
			if err != nil {
				return err
			}
			defer j.Close()
			if *resume {
				fmt.Fprintf(os.Stderr, "biaslab: resuming from %s (%d recorded points)\n", *journalPath, j.Len())
			}
			a.ck = j
		}
		return a.dispatch(rest[0], rest[1:])
	}()
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "biaslab:", err)
	}
	return exitCode(err)
}

// serviceCommands are the subcommands that map onto biaslabd job kinds and
// so accept -server (remote execution) and -json (canonical result JSON).
// Every sweep kind in the channel registry is one.
var serviceCommands = func() map[string]bool {
	m := map[string]bool{
		"run": true, "randomize": true, "spec": true,
		"experiment": true, "figure": true, "table": true, "all": true, "list": true,
	}
	for _, ch := range channels.All() {
		m[ch.JobKind] = true
	}
	return m
}()

func (a *app) dispatch(cmd string, cmdArgs []string) error {
	if a.server != "" && !serviceCommands[cmd] {
		return usageErrorf("%s runs locally only; -server supports run, sweep-env, sweep-pad, sweep-base, sweep-link, sweep-tenant, randomize, spec, experiment, all and list", cmd)
	}
	if a.jsonOut && cmd != "predict" && cmd != "audit" && (!serviceCommands[cmd] || cmd == "all") {
		return usageErrorf("-json is not supported for %s", cmd)
	}
	if ch, ok := channels.ByJobKind(cmd); ok {
		return a.cmdSweep(ch, cmdArgs)
	}
	switch cmd {
	case "run":
		return a.cmdRun(cmdArgs)
	case "randomize":
		return a.cmdRandomize(cmdArgs)
	case "spec":
		return a.cmdSpec(cmdArgs)
	case "causal":
		return a.cmdCausal(cmdArgs)
	case "profile":
		return a.cmdProfile(cmdArgs)
	case "compare":
		return a.cmdCompare(cmdArgs)
	case "vet":
		return a.cmdVet(cmdArgs)
	case "audit":
		return a.cmdAudit(cmdArgs)
	case "predict":
		return a.cmdPredict(cmdArgs)
	case "survey":
		fmt.Print(survey.Summarize(survey.Dataset()).Table())
		return nil
	case "experiment", "figure", "table":
		return a.cmdExperiment(cmdArgs)
	case "all":
		return a.cmdAll(cmdArgs)
	case "list":
		return a.cmdList()
	case "help":
		usage()
		return nil
	}
	return usageErrorf("unknown subcommand %q (try 'biaslab help')", cmd)
}

func usage() {
	fmt.Fprint(os.Stderr, `biaslab — a measurement-bias laboratory (ASPLOS 2009 reproduction)

subcommands:
  run        measure one benchmark under one setup (optionally with a co-runner)
  sweep-env  vary the UNIX environment size, report the speedup swing
  sweep-pad  vary inter-object text padding, report the speedup swing
  sweep-base vary the image base address, report the speedup swing
  sweep-link vary the link order, report the speedup swing
  sweep-tenant vary the co-running benchmark, report the speedup swing
  randomize  estimate a speedup over randomized setups (the paper's remedy)
  spec       validate, expand or run a declarative bias-on-demand spec file
  causal     intervene on stack placement, rank hardware-event correlates
  profile    per-function cycle attribution for one run
  compare    robust A/B comparison of two toolchain configs across setups
  vet        lint benchmark programs (or .cm files); exit 1 on findings
  audit      flag benchmarking crimes in experiment spec files; exit 1 on findings
  predict    static bias oracle: predicted env/pad/base/link-order sensitivity
  survey     print the 133-paper literature-survey table
  experiment regenerate one artifact by id (F1..F9, T1..T4)
  all        regenerate every artifact
  list       list benchmarks, machines and experiments

global flags: -size test|small|ref   -csv   -json   -out <dir>
              -timeout <dur>   -journal <file>   -resume
              -server <url>  (run jobs on a biaslabd daemon)
`)
}

func parseSize(s string) (biaslab.Size, error) {
	switch s {
	case "test":
		return biaslab.SizeTest, nil
	case "small":
		return biaslab.SizeSmall, nil
	case "ref":
		return biaslab.SizeRef, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

// benchFlag adds and resolves the -bench flag.
func benchFlag(fs *flag.FlagSet) *string {
	return fs.String("bench", "perlbench", "benchmark name (see 'biaslab list')")
}

func machineFlag(fs *flag.FlagSet) *string {
	return fs.String("machine", "core2", "machine model: p4, core2, m5")
}

func lookupBench(name string) (*biaslab.BenchmarkProgram, error) {
	b, ok := biaslab.Benchmark(name)
	if !ok {
		names := make([]string, 0, len(bench.All()))
		for _, known := range bench.All() {
			names = append(names, known.Name)
		}
		return nil, usageErrorf("unknown benchmark %q; available: %s (see 'biaslab list')",
			name, strings.Join(names, ", "))
	}
	return b, nil
}

func (a *app) cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	benchName := benchFlag(fs)
	machineName := machineFlag(fs)
	env := fs.Uint64("env", 512, "environment size in bytes")
	o3 := fs.Bool("O3", false, "compile at -O3 (default -O2)")
	icc := fs.Bool("icc", false, "use the icc personality (default gcc)")
	coBench := fs.String("co-bench", "", "co-run this benchmark through the shared cache/TLB/predictor hierarchy")
	coLevel := fs.String("co-level", "", "co-runner optimization level (default O2)")
	quantum := fs.Uint64("quantum", 0, "interleave quantum in retired instructions (0 = engine default)")
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	spec := server.JobSpec{
		Kind:     server.KindRun,
		Size:     a.size.String(),
		Bench:    *benchName,
		Machine:  *machineName,
		EnvBytes: *env,
		CoBench:  *coBench,
		CoLevel:  *coLevel,
		Quantum:  *quantum,
	}
	if *o3 {
		spec.Level = "O3"
	}
	if *icc {
		spec.Personality = "icc"
	}
	return a.runSpec(spec)
}

// sweepFlagSpec declares the extra flags one sweep kind takes; the flag
// names, defaults and help strings are those of the former per-kind
// subcommands, verbatim, so collapsing them changed no behavior.
type sweepFlagSpec struct {
	step     bool   // -step (env)
	adaptive string // -adaptive help text, "" = no such flag
	orders   bool   // -orders and -seed (link)
	tenant   bool   // -co-level and -quantum (tenant)
}

var sweepFlagSpecs = map[string]sweepFlagSpec{
	"env":    {step: true, adaptive: "oracle-guided sweep: measure predicted boundaries, verify and interpolate plateaus"},
	"pad":    {adaptive: "comparator-guided sweep: measure where layouts provably differ, verify and interpolate proven-equal plateaus"},
	"base":   {adaptive: "comparator-guided sweep: measure where layouts provably differ, verify and interpolate proven-equal plateaus"},
	"link":   {orders: true},
	"tenant": {tenant: true},
}

// cmdSweep is the one sweep subcommand behind every channel in the
// registry: registry entry in, job spec out.
func (a *app) cmdSweep(ch channels.Channel, args []string) error {
	sf := sweepFlagSpecs[ch.Name]
	fs := flag.NewFlagSet(ch.JobKind, flag.ContinueOnError)
	benchName := benchFlag(fs)
	machineName := machineFlag(fs)
	var step, seed, quantum *uint64
	var adaptive *bool
	var orders *int
	var coLevel *string
	if sf.step {
		step = fs.Uint64("step", 128, "environment-size step in bytes")
	}
	if sf.adaptive != "" {
		adaptive = fs.Bool("adaptive", false, sf.adaptive)
	}
	if sf.orders {
		orders = fs.Int("orders", 16, "number of random link orders")
		seed = fs.Uint64("seed", 1, "random seed")
	}
	if sf.tenant {
		coLevel = fs.String("co-level", "O2", "co-runner optimization level")
		quantum = fs.Uint64("quantum", 0, "interleave quantum in retired instructions (0 = engine default)")
	}
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	spec := server.JobSpec{
		Kind:    ch.JobKind,
		Size:    a.size.String(),
		Bench:   *benchName,
		Machine: *machineName,
	}
	if step != nil {
		spec.Step = *step
	}
	if adaptive != nil {
		spec.Adaptive = *adaptive
	}
	if orders != nil {
		spec.Orders = *orders
		spec.Seed = *seed
	}
	if coLevel != nil {
		spec.CoLevel = *coLevel
		spec.Quantum = *quantum
	}
	return a.runSpec(spec)
}

func (a *app) cmdRandomize(args []string) error {
	fs := flag.NewFlagSet("randomize", flag.ContinueOnError)
	benchName := benchFlag(fs)
	machineName := machineFlag(fs)
	n := fs.Int("n", 16, "number of randomized setups (max, when -tol is set)")
	seed := fs.Uint64("seed", 1, "random seed")
	tol := fs.Float64("tol", 0, "adaptive mode: stop when the 95% CI half-width falls below this (e.g. 0.005)")
	coBench := fs.String("co-bench", "", "pin this benchmark as a fixed co-runner on the shared machine (the auditor will object)")
	coRandom := fs.Bool("co-random", false, "randomize the co-runner over the canonical panel, idle included")
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	return a.runSpec(server.JobSpec{
		Kind:     server.KindRandomize,
		Size:     a.size.String(),
		Bench:    *benchName,
		Machine:  *machineName,
		N:        *n,
		Seed:     *seed,
		Tol:      *tol,
		CoBench:  *coBench,
		CoRandom: *coRandom,
	})
}

func (a *app) cmdCausal(args []string) error {
	fs := flag.NewFlagSet("causal", flag.ContinueOnError)
	benchName := benchFlag(fs)
	machineName := machineFlag(fs)
	maxShift := fs.Uint64("max-shift", 1024, "largest stack displacement in bytes")
	step := fs.Uint64("step", 128, "displacement step")
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	b, err := lookupBench(*benchName)
	if err != nil {
		return err
	}
	r := biaslab.NewRunner(a.size)
	rep, err := biaslab.CausalStudy(a.ctx, r, b, biaslab.DefaultSetup(*machineName), *maxShift, *step)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	t := &report.Table{Title: "counter correlations:", Headers: []string{"counter", "pearson", "spearman"}}
	for _, c := range rep.Correlations {
		t.AddRow(c.Counter, c.Pearson, c.Spearman)
	}
	fmt.Print(t.String())
	return nil
}

func (a *app) cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	benchName := benchFlag(fs)
	machineName := machineFlag(fs)
	env := fs.Uint64("env", 512, "environment size in bytes")
	o3 := fs.Bool("O3", false, "compile at -O3 (default -O2)")
	top := fs.Int("top", 15, "how many functions to show")
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	b, err := lookupBench(*benchName)
	if err != nil {
		return err
	}
	setup := biaslab.DefaultSetup(*machineName)
	setup.EnvBytes = *env
	if *o3 {
		setup = setup.WithLevel(biaslab.O3)
	}
	r := biaslab.NewRunner(a.size)
	m, prof, err := r.MeasureProfiled(a.ctx, b, setup)
	if err != nil {
		return err
	}
	fmt.Printf("%s under %s: %d cycles, %d instructions, IPC %.2f\n\n",
		b.Name, setup, m.Cycles, m.Counters.Instructions, m.Counters.IPC())
	fmt.Print(prof.Top(*top).String())
	return nil
}

func (a *app) cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	benchName := benchFlag(fs)
	machineName := machineFlag(fs)
	aSpec := fs.String("a", "gcc:O2", "config A as personality:level (e.g. gcc:O2)")
	bSpec := fs.String("b", "icc:O2", "config B as personality:level")
	n := fs.Int("n", 12, "number of randomized setups")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	b, err := lookupBench(*benchName)
	if err != nil {
		return err
	}
	cfgA, err := parseConfigSpec(*aSpec)
	if err != nil {
		return err
	}
	cfgB, err := parseConfigSpec(*bSpec)
	if err != nil {
		return err
	}
	r := biaslab.NewRunner(a.size)
	cmp, err := biaslab.CompareConfigs(a.ctx, r, b, biaslab.DefaultSetup(*machineName), cfgA, cfgB, *n, *seed)
	if err != nil {
		return err
	}
	fmt.Println(cmp)
	return nil
}

// parseConfigSpec parses "gcc:O2" / "icc:O3" style toolchain specs.
func parseConfigSpec(spec string) (biaslab.CompilerConfig, error) {
	var cfg biaslab.CompilerConfig
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return cfg, usageErrorf("config spec %q must look like gcc:O2", spec)
	}
	pers, err := compiler.ParsePersonality(parts[0])
	if err != nil {
		return cfg, usageError{err}
	}
	lvl, err := compiler.ParseLevel(parts[1])
	if err != nil {
		return cfg, usageError{err}
	}
	return biaslab.CompilerConfig{Level: lvl, Personality: pers}, nil
}

func (a *app) cmdExperiment(args []string) error {
	if len(args) == 0 {
		return usageErrorf("experiment needs an id (one of %s)", strings.Join(biaslab.ExperimentIDs(), ", "))
	}
	res, raw, err := a.experimentResult(args[0])
	if err != nil {
		return err
	}
	if a.jsonOut {
		return a.render(res, raw)
	}
	e := res.Experiment
	a.emit(&biaslab.ExperimentResult{ID: e.ID, Title: e.Title, Text: e.Text, CSV: e.CSV})
	return nil
}

func (a *app) cmdAll(args []string) error {
	if a.server != "" {
		// Each experiment is its own daemon job; the daemon's shared caches
		// and result store memoize across them.
		for _, id := range biaslab.ExperimentIDs() {
			res, _, err := a.experimentResult(id)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			e := res.Experiment
			a.emit(&biaslab.ExperimentResult{ID: e.ID, Title: e.Title, Text: e.Text, CSV: e.CSV})
			fmt.Println()
		}
		return nil
	}
	lab := biaslab.NewLabCtx(a.ctx, biaslab.LabOptions{Size: a.size}, a.ck)
	for _, id := range biaslab.ExperimentIDs() {
		res, err := lab.ByID(id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		a.emit(res)
		fmt.Println()
	}
	return nil
}

func (a *app) emit(res *biaslab.ExperimentResult) {
	if a.outDir != "" {
		if err := a.save(res); err != nil {
			fmt.Fprintln(os.Stderr, "biaslab: saving artifact:", err)
		}
	}
	if a.csv {
		fmt.Printf("# %s: %s\n%s", res.ID, res.Title, res.CSV)
		return
	}
	fmt.Println(res.Text)
}

// save writes <out>/<id>.txt and <out>/<id>.csv.
func (a *app) save(res *biaslab.ExperimentResult) error {
	if err := os.MkdirAll(a.outDir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(a.outDir, strings.ToLower(res.ID))
	if err := os.WriteFile(base+".txt", []byte(res.Title+"\n\n"+res.Text), 0o644); err != nil {
		return err
	}
	return os.WriteFile(base+".csv", []byte(res.CSV), 0o644)
}

func (a *app) cmdList() error {
	cat := server.NewCatalog()
	if a.server != "" {
		remote, err := client.New(a.server).Catalog(a.ctx)
		if err != nil {
			return err
		}
		cat = remote
	}
	if a.jsonOut {
		b, err := json.Marshal(cat)
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
		fmt.Println()
		return nil
	}
	fmt.Println("benchmarks (SPEC CPU2006 C analogues):")
	for _, b := range cat.Benchmarks {
		fmt.Printf("  %-11s %-15s %s\n", b.Name, b.Spec, b.Kernel)
	}
	fmt.Printf("\nmachines: %s\n", strings.Join(cat.Machines, ", "))
	fmt.Println("bias channels:")
	for _, ch := range cat.Channels {
		oracle := ""
		if ch.Oracle {
			oracle = "  (predictable: biaslab predict)"
		}
		fmt.Printf("  %-7s %-13s %s%s\n", ch.Name, ch.Kind, ch.Factor, oracle)
	}
	fmt.Printf("experiments: %s\n", strings.Join(cat.Experiments, ", "))
	fmt.Println("static analysis: vet (cmini lint), predict (bias oracle conflict map)")
	return nil
}
