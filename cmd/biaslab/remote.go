package main

import (
	"context"
	"fmt"
	"os"

	"biaslab"
	"biaslab/internal/server"
	"biaslab/internal/server/client"
)

// runSpec is the single execution path behind run, sweep-env, sweep-link
// and randomize: canonicalize the spec, execute it — locally through the
// same server.Execute the daemon's workers call, or remotely through a
// biaslabd daemon — and render the result through the shared renderers.
// Local and remote output are byte-identical by construction.
func (a *app) runSpec(spec server.JobSpec) error {
	canonical, err := spec.Canonicalize()
	if err != nil {
		return usageError{err}
	}
	if a.server != "" {
		res, raw, err := a.remoteResult(canonical)
		if err != nil {
			return err
		}
		return a.render(res, raw)
	}
	res, err := server.Execute(a.ctx, biaslab.NewRunner(a.size), canonical, a.ck, nil)
	if err != nil {
		return err
	}
	return a.render(res, nil)
}

// remoteResult submits a canonical spec to the -server daemon, streams its
// progress events to stderr, and fetches the stored result: both its
// decoded form and the raw stored bytes, which are exactly the bytes the
// same job produces locally.
func (a *app) remoteResult(spec server.JobSpec) (*server.Result, []byte, error) {
	cl := client.New(a.server)
	sub, err := cl.Submit(a.ctx, spec)
	if err != nil {
		return nil, nil, err
	}
	// Daemon-side audit findings are advisory on a normal submission;
	// surface them on stderr so the rendered result stays byte-identical
	// to a local run.
	for _, f := range sub.Audit {
		suffix := ""
		if f.Suppressed {
			suffix = " (suppressed)"
		}
		fmt.Fprintf(os.Stderr, "biaslab: audit %s %s: %s%s\n", f.Severity, f.Rule, f.Message, suffix)
	}
	if sub.Cached {
		fmt.Fprintf(os.Stderr, "biaslab: %s: result %s served from cache\n", a.server, sub.Key)
	} else {
		if sub.InFlight {
			fmt.Fprintf(os.Stderr, "biaslab: %s: joined in-flight job %s\n", a.server, sub.ID)
		}
		if err := a.watchRemote(cl, sub.ID); err != nil {
			return nil, nil, err
		}
	}
	return cl.Result(a.ctx, sub.Key)
}

// watchRemote follows a job's SSE stream, echoing per-point progress to
// stderr, until the job reaches a terminal state; a failed or canceled job
// becomes an error.
func (a *app) watchRemote(cl *client.Client, id string) error {
	evCtx, stopEvents := context.WithCancel(a.ctx)
	events := make(chan struct{})
	go func() {
		defer close(events)
		err := cl.Events(evCtx, id, func(ev server.Event) {
			if ev.Type != "point" {
				return
			}
			mark := ""
			if ev.Replayed {
				mark = " (replayed)"
			}
			fmt.Fprintf(os.Stderr, "biaslab: point %d/%d %s%s\n", ev.Done, ev.Total, ev.Key, mark)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "biaslab: event stream:", err)
		}
	}()
	st, err := cl.Wait(a.ctx, id)
	stopEvents()
	<-events
	if err != nil {
		return err
	}
	switch st.State {
	case server.StateDone:
		return nil
	case server.StateCanceled:
		return fmt.Errorf("job %s canceled by the server (daemon draining?)", id)
	default:
		if st.Error != nil {
			return fmt.Errorf("job %s failed: %s", id, st.Error.Message)
		}
		return fmt.Errorf("job %s finished %s", id, st.State)
	}
}

// render prints a result: raw canonical JSON under -json, CSV under -csv,
// rendered text otherwise. raw may be nil (local runs); it is encoded on
// demand, producing exactly the bytes a daemon would have stored.
func (a *app) render(res *server.Result, raw []byte) error {
	switch {
	case a.jsonOut:
		if raw == nil {
			var err error
			raw, err = server.EncodeResult(res)
			if err != nil {
				return err
			}
		}
		os.Stdout.Write(raw)
		fmt.Println()
	case a.csv:
		s, err := server.RenderCSV(res)
		if err != nil {
			return err
		}
		fmt.Print(s)
	default:
		s, err := server.RenderText(res)
		if err != nil {
			return err
		}
		fmt.Print(s)
	}
	return nil
}

// experimentResult resolves one experiment id — remotely as a daemon job,
// or locally through the shared Execute path (which drives the same Lab
// the text-mode CLI uses).
func (a *app) experimentResult(id string) (*server.Result, []byte, error) {
	spec := server.JobSpec{Kind: server.KindExperiment, Experiment: id, Size: a.size.String()}
	canonical, err := spec.Canonicalize()
	if err != nil {
		return nil, nil, usageError{err}
	}
	if a.server != "" {
		return a.remoteResult(canonical)
	}
	res, err := server.Execute(a.ctx, biaslab.NewRunner(a.size), canonical, a.ck, nil)
	if err != nil {
		return nil, nil, err
	}
	return res, nil, nil
}
