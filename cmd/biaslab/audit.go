package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"biaslab"
	"biaslab/internal/audit"
)

// cmdAudit statically audits experiment spec files for benchmarking
// crimes — no measurements are run. Files are JSON job specs (single, an
// array audited as one comparison, or a stored result envelope), with `//`
// comments and `//audit:allow <rule>` suppression directives. Exit status
// is 1 when any unsuppressed error-severity finding remains, so the
// command gates in CI exactly like `biaslab vet`.
func (a *app) cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	files := fs.Args()
	if len(files) == 0 {
		return usageErrorf("audit needs spec files (biaslab audit examples/specs/*.json)")
	}

	var ins []audit.Spec
	for _, f := range files {
		loaded, err := audit.LoadFile(f)
		if err != nil {
			return err
		}
		ins = append(ins, loaded...)
	}

	// One lazily built Runner per workload size: the oracle-backed rules
	// compile and link through its caches but never simulate.
	runners := map[biaslab.Size]*biaslab.Runner{}
	auditor := audit.New(func(size biaslab.Size) *biaslab.Runner {
		r, ok := runners[size]
		if !ok {
			r = biaslab.NewRunner(size)
			runners[size] = r
		}
		return r
	})

	rep, err := auditor.AuditSet(ins)
	if err != nil {
		return err
	}
	if a.jsonOut {
		b, err := json.Marshal(rep)
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
		fmt.Println()
	} else {
		fmt.Print(rep.String())
	}
	if !rep.OK {
		return fmt.Errorf("audit: %d gating finding(s)", rep.Gating)
	}
	return nil
}
