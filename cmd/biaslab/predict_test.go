package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// captureStderrRun invokes the CLI entry point with stderr captured: the
// channel the diagnostics travel on.
func captureStderrRun(t *testing.T, args ...string) (string, int) {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	outCh := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		outCh <- string(b)
	}()
	code := run(args)
	w.Close()
	os.Stderr = old
	return <-outCh, code
}

// TestPredictUnknownBenchmark locks the contract for a typo'd -bench: exit
// code 2 (usage error, not a failed experiment) and a diagnostic that names
// the bad benchmark and lists every available one, in both the text and
// -json modes.
func TestPredictUnknownBenchmark(t *testing.T) {
	cases := [][]string{
		{"-size", "test", "predict", "-bench", "nosuch", "-machine", "p4"},
		{"-size", "test", "-json", "predict", "-bench", "nosuch", "-machine", "p4"},
	}
	for _, args := range cases {
		errOut, code := captureStderrRun(t, args...)
		if code != 2 {
			t.Errorf("run(%v) = exit %d, want 2", args, code)
		}
		for _, want := range []string{`unknown benchmark "nosuch"`, "available:", "hmmer"} {
			if !strings.Contains(errOut, want) {
				t.Errorf("run(%v) stderr %q does not mention %q", args, errOut, want)
			}
		}
	}
}

// TestPredictUnknownChannel: -channel is a closed enum; anything else is a
// usage error naming the valid values.
func TestPredictUnknownChannel(t *testing.T) {
	errOut, code := captureStderrRun(t,
		"-size", "test", "predict", "-bench", "hmmer", "-machine", "p4", "-channel", "moonphase")
	if code != 2 {
		t.Errorf("unknown channel: exit %d, want 2", code)
	}
	if !strings.Contains(errOut, `unknown channel "moonphase"`) {
		t.Errorf("stderr %q does not name the bad channel", errOut)
	}
}
