package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"biaslab/internal/server"
)

func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{errors.New("experiment failed"), 1},
		{usageErrorf("bad flag"), 2},
		{fmt.Errorf("wrapped: %w", usageErrorf("bad flag")), 2},
		{context.DeadlineExceeded, 124},
		{fmt.Errorf("sweep: %w", context.DeadlineExceeded), 124},
		{context.Canceled, 130},
		{fmt.Errorf("sweep: %w", context.Canceled), 130},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no subcommand", nil},
		{"unknown subcommand", []string{"frobnicate"}},
		{"bad size", []string{"-size", "enormous", "list"}},
		{"resume without journal", []string{"-resume", "list"}},
		{"bad experiment id", []string{"experiment"}},
	}
	for _, tc := range cases {
		if got := run(tc.args); got != 2 {
			t.Errorf("%s: run(%v) = %d, want exit 2", tc.name, tc.args, got)
		}
	}
}

// TestJournalReuseRefused: pointing -journal at a file with recorded points
// without -resume must refuse rather than silently replaying someone
// else's measurements.
func TestJournalReuseRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte(`{"key":"k","val":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"-journal", path, "list"}); got != 2 {
		t.Errorf("non-empty journal without -resume: exit %d, want 2", got)
	}
	// With -resume the same invocation proceeds.
	if got := run([]string{"-journal", path, "-resume", "list"}); got != 0 {
		t.Errorf("journalled list with -resume: exit %d, want 0", got)
	}
	// A fresh (empty) journal needs no -resume.
	empty := filepath.Join(t.TempDir(), "fresh.jsonl")
	if got := run([]string{"-journal", empty, "list"}); got != 0 {
		t.Errorf("fresh journal: exit %d, want 0", got)
	}
}

// captureRun invokes the CLI entry point with stdout captured.
func captureRun(t *testing.T, args ...string) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outCh := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		outCh <- string(b)
	}()
	code := run(args)
	w.Close()
	os.Stdout = old
	return <-outCh, code
}

// TestServerModeByteIdentical is the end-to-end acceptance check at the CLI
// level: the same sweep run locally and against a live biaslabd daemon must
// print byte-identical output — in rendered text, CSV, and canonical JSON —
// and the resubmission must be served from the daemon's cache.
func TestServerModeByteIdentical(t *testing.T) {
	srv, err := server.New(server.Config{DataDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sweep := []string{"sweep-env", "-bench", "hmmer", "-machine", "p4", "-step", "512"}
	for _, mode := range []struct {
		name string
		flag []string
	}{
		{"text", nil},
		{"csv", []string{"-csv"}},
		{"json", []string{"-json"}},
	} {
		local, code := captureRun(t, append(append([]string{"-size", "test"}, mode.flag...), sweep...)...)
		if code != 0 {
			t.Fatalf("%s: local run exited %d", mode.name, code)
		}
		remote, code := captureRun(t, append(append([]string{"-size", "test", "-server", ts.URL}, mode.flag...), sweep...)...)
		if code != 0 {
			t.Fatalf("%s: remote run exited %d", mode.name, code)
		}
		if local != remote {
			t.Errorf("%s output differs between local and -server:\n-- local --\n%s-- remote --\n%s", mode.name, local, remote)
		}
		if local == "" {
			t.Errorf("%s output empty", mode.name)
		}
	}
	// All three remote invocations asked for the same job: one execution,
	// two cache hits, zero extra measurements.
	m := srv.MetricsSnapshot()
	if m.CacheMisses != 1 || m.CacheHits != 2 {
		t.Errorf("daemon saw %d misses / %d hits, want 1/2", m.CacheMisses, m.CacheHits)
	}

	// list renders identically from the local catalog and the daemon's.
	localList, _ := captureRun(t, "list")
	remoteList, code := captureRun(t, "-server", ts.URL, "list")
	if code != 0 || localList != remoteList {
		t.Errorf("list differs (exit %d):\n%s\nvs\n%s", code, localList, remoteList)
	}
	jsonList, code := captureRun(t, "-json", "list")
	if code != 0 || !strings.HasPrefix(jsonList, `{"benchmarks":[`) {
		t.Errorf("-json list (exit %d): %.80s", code, jsonList)
	}
}

// TestServerModeTenantSweepByteIdentical: the co-run interference sweep,
// run locally and against a live daemon, prints byte-identical output in
// every rendering — the same end-to-end guarantee the other channels have.
func TestServerModeTenantSweepByteIdentical(t *testing.T) {
	srv, err := server.New(server.Config{DataDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sweep := []string{"sweep-tenant", "-bench", "sjeng", "-machine", "core2"}
	for _, mode := range []struct {
		name string
		flag []string
	}{
		{"text", nil},
		{"csv", []string{"-csv"}},
		{"json", []string{"-json"}},
	} {
		local, code := captureRun(t, append(append([]string{"-size", "test"}, mode.flag...), sweep...)...)
		if code != 0 {
			t.Fatalf("%s: local run exited %d", mode.name, code)
		}
		remote, code := captureRun(t, append(append([]string{"-size", "test", "-server", ts.URL}, mode.flag...), sweep...)...)
		if code != 0 {
			t.Fatalf("%s: remote run exited %d", mode.name, code)
		}
		if local != remote {
			t.Errorf("%s output differs between local and -server:\n-- local --\n%s-- remote --\n%s", mode.name, local, remote)
		}
		if local == "" {
			t.Errorf("%s output empty", mode.name)
		}
	}
	m := srv.MetricsSnapshot()
	if m.CacheMisses != 1 || m.CacheHits != 2 {
		t.Errorf("daemon saw %d misses / %d hits, want 1/2", m.CacheMisses, m.CacheHits)
	}
}

// TestServerFlagValidation: flag combinations that cannot work must exit 2.
func TestServerFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-server", "http://localhost:1", "-journal", "j.jsonl", "sweep-env"},
		{"-csv", "-json", "list"},
		{"-json", "causal"},
		{"-server", "http://localhost:1", "vet"},
	}
	for _, args := range cases {
		if _, code := captureRun(t, args...); code != 2 {
			t.Errorf("run(%v) exited %d, want 2", args, code)
		}
	}
}
