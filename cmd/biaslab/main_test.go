package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{errors.New("experiment failed"), 1},
		{usageErrorf("bad flag"), 2},
		{fmt.Errorf("wrapped: %w", usageErrorf("bad flag")), 2},
		{context.DeadlineExceeded, 124},
		{fmt.Errorf("sweep: %w", context.DeadlineExceeded), 124},
		{context.Canceled, 130},
		{fmt.Errorf("sweep: %w", context.Canceled), 130},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no subcommand", nil},
		{"unknown subcommand", []string{"frobnicate"}},
		{"bad size", []string{"-size", "enormous", "list"}},
		{"resume without journal", []string{"-resume", "list"}},
		{"bad experiment id", []string{"experiment"}},
	}
	for _, tc := range cases {
		if got := run(tc.args); got != 2 {
			t.Errorf("%s: run(%v) = %d, want exit 2", tc.name, tc.args, got)
		}
	}
}

// TestJournalReuseRefused: pointing -journal at a file with recorded points
// without -resume must refuse rather than silently replaying someone
// else's measurements.
func TestJournalReuseRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte(`{"key":"k","val":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"-journal", path, "list"}); got != 2 {
		t.Errorf("non-empty journal without -resume: exit %d, want 2", got)
	}
	// With -resume the same invocation proceeds.
	if got := run([]string{"-journal", path, "-resume", "list"}); got != 0 {
		t.Errorf("journalled list with -resume: exit %d, want 0", got)
	}
	// A fresh (empty) journal needs no -resume.
	empty := filepath.Join(t.TempDir(), "fresh.jsonl")
	if got := run([]string{"-journal", empty, "list"}); got != 0 {
		t.Errorf("fresh journal: exit %d, want 0", got)
	}
}
