package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"biaslab/internal/analysis"
	"biaslab/internal/bench"
	"biaslab/internal/channels"
	"biaslab/internal/cmini"
	"biaslab/internal/compiler"
	"biaslab/internal/core"
	"biaslab/internal/linker"
	"biaslab/internal/loader"
	"biaslab/internal/machine"
	"biaslab/internal/report"
)

// cmdVet lints cmini programs: the shipped benchmark sources by default,
// or explicit .cm files (checked together as one program). Any finding is
// printed and the command exits 1 so CI can gate on it.
func (a *app) cmdVet(args []string) error {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	benchName := fs.String("bench", "", "lint one benchmark instead of all (ignored when files are given)")
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}

	nFindings := 0
	lintUnit := func(label string, sources map[string]string) error {
		var files []*cmini.File
		for _, name := range sortedNames(sources) {
			f, err := cmini.ParseFile(name, sources[name])
			if err != nil {
				return fmt.Errorf("%s: %w", label, err)
			}
			files = append(files, f)
		}
		u, err := cmini.Check(files)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		for _, d := range analysis.Lint(u) {
			fmt.Println(d)
			nFindings++
		}
		return nil
	}

	if fs.NArg() > 0 {
		sources := map[string]string{}
		for _, path := range fs.Args() {
			text, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			sources[path] = string(text)
		}
		if err := lintUnit("vet", sources); err != nil {
			return err
		}
	} else {
		benches := bench.All()
		if *benchName != "" {
			b, err := lookupBench(*benchName)
			if err != nil {
				return err
			}
			benches = []*bench.Benchmark{b}
		}
		for _, b := range benches {
			sources := map[string]string{}
			for _, s := range b.Sources(bench.Size(a.size)) {
				sources[s.Name] = s.Text
			}
			if err := lintUnit(b.Name, sources); err != nil {
				return err
			}
		}
	}
	if nFindings > 0 {
		return fmt.Errorf("vet: %d finding(s)", nFindings)
	}
	return nil
}

func sortedNames(m map[string]string) []string {
	names := make([]string, 0, len(m))
	for name := range m { //determlint:allow names are sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// cmdPredict runs the bias oracle: it compiles and links one benchmark,
// statically extracts its stack footprint, and prints the predicted
// env-size transition points plus the link-permutation layout classes —
// without simulating a single cycle. -channel selects which perturbation
// is analyzed: env (stack displacement, the default), pad (inter-object
// text padding) or base (image-base displacement); the code channels go
// through the dataflow comparator, which proves pairs of layouts equal or
// different instead of predicting from one binary.
func (a *app) cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	benchName := benchFlag(fs)
	machineName := machineFlag(fs)
	channel := fs.String("channel", "env", "prediction channel: "+strings.Join(channels.OracleNames(), ", "))
	step := fs.Uint64("step", 8, "environment-size grid step in bytes (channel env)")
	maxEnv := fs.Uint64("max-env", 2048, "largest environment size on the grid (channel env)")
	perms := fs.Int("perms", 24, "link permutations to enumerate (cap)")
	o3 := fs.Bool("O3", false, "compile at -O3 (default -O2)")
	icc := fs.Bool("icc", false, "use the icc personality (default gcc)")
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	if ch, ok := channels.ByName(*channel); !ok || !ch.Oracle {
		// The registry decides what predict can analyze. The tenant channel
		// is registered but deliberately not predictable: shared-state
		// displacement depends on both tenants' dynamic reference streams,
		// so the honest answer is UNKNOWN — measure it (sweep-tenant).
		if ok {
			return usageErrorf("channel %q has no static oracle (co-run interference is UNKNOWN until measured; use 'biaslab %s'); predictable channels: %s",
				*channel, ch.JobKind, strings.Join(channels.OracleNames(), ", "))
		}
		return usageErrorf("unknown channel %q: use %s", *channel, strings.Join(channels.OracleNames(), ", "))
	}
	b, err := lookupBench(*benchName)
	if err != nil {
		return err
	}
	cfg, ok := machine.ConfigByName(*machineName)
	if !ok {
		return usageErrorf("unknown machine %q (try 'biaslab list')", *machineName)
	}

	if a.jsonOut {
		// Emit the measurement plan for an adaptive sweep of the selected
		// channel: the merged O2+O3 EnvPlan, built through the very function
		// the adaptive sweep calls, so what this command prints is exactly
		// what the planner consumes. -O3 is moot here (the plan always
		// covers both levels).
		setup := core.DefaultSetup(*machineName)
		if *icc {
			setup.Compiler.Personality = compiler.ICC
		}
		r := core.NewRunner(bench.Size(a.size))
		var plan *analysis.EnvPlan
		switch *channel {
		case "pad":
			plan, err = core.PlanPadSweep(r, b, setup, core.DefaultPadSizes())
		case "base":
			plan, err = core.PlanBaseSweep(r, b, setup, core.DefaultTextBases())
		default:
			var sizes []uint64
			if *step == 0 {
				*step = 8
			}
			for e := uint64(24); e <= *maxEnv; e += *step {
				sizes = append(sizes, e)
			}
			plan, err = core.PlanEnvSweep(r, b, setup, sizes)
		}
		if err != nil {
			return err
		}
		out, err := json.MarshalIndent(plan, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}

	ccfg := compiler.Config{Level: compiler.O2}
	if *o3 {
		ccfg.Level = compiler.O3
	}
	if *icc {
		ccfg.Personality = compiler.ICC
	}

	var sources []compiler.Source
	var objNames []string
	for _, s := range b.Sources(bench.Size(a.size)) {
		sources = append(sources, compiler.Source{Name: s.Name, Text: s.Text})
		objNames = append(objNames, s.Name)
	}
	objs, prog, err := compiler.Compile(sources, ccfg)
	if err != nil {
		return err
	}

	if *channel != "env" {
		// Code channels: link the executable at every grid value, run the
		// dataflow engine over each, and print the comparator's pairwise
		// verdicts for the compiled level.
		values := core.DefaultPadSizes()
		linkOpts := func(v uint64) linker.Options { return linker.Options{PadObjects: v} }
		if *channel == "base" {
			values = core.DefaultTextBases()
			linkOpts = func(v uint64) linker.Options { return linker.Options{TextBase: v} }
		}
		layouts := make([]*analysis.ChannelLayout, 0, len(values))
		for _, v := range values {
			exe, err := linker.Link(objs, linkOpts(v))
			if err != nil {
				return err
			}
			cl, err := analysis.NewChannelLayout(v, exe, prog)
			if err != nil {
				return err
			}
			layouts = append(layouts, cl)
		}
		sp := loader.InitialSP(loader.Options{
			Env:  loader.SyntheticEnv(core.DefaultEnvBytes),
			Args: []string{b.Name},
		})
		cm := analysis.BuildChannelConflictMap(b.Name, *machineName, *channel, cfg, sp, layouts)
		if a.csv {
			fmt.Print(report.ChannelMapCSV(cm))
			return nil
		}
		fmt.Printf("bias oracle: %s compiled %s, machine %s (%s workload)\n\n", b.Name, ccfg, *machineName, a.size)
		fmt.Print(report.ChannelMapText(cm))
		return nil
	}

	exe, err := linker.Link(objs, linker.Options{})
	if err != nil {
		return err
	}
	o, err := analysis.NewOracle(exe, prog, cfg, []string{b.Name}, 0)
	if err != nil {
		return err
	}

	var sizes []uint64
	if *step == 0 {
		*step = 8
	}
	for e := uint64(24); e <= *maxEnv; e += *step {
		sizes = append(sizes, e)
	}
	cm := o.ConflictMap(b.Name, *machineName, sizes)

	lm, err := analysis.BuildLinkOrderMap(objs, cfg, linker.Options{}, *perms)
	if err != nil {
		return err
	}

	if a.csv {
		fmt.Print(report.ConflictMapCSV(cm))
		return nil
	}
	fmt.Printf("bias oracle: %s compiled %s, machine %s (%s workload)\n", b.Name, ccfg, *machineName, a.size)
	fmt.Printf("stack footprint: %d intervals, max depth %d bytes\n\n", len(o.Foot.Intervals), o.Foot.MaxDepth)
	fmt.Print(report.ConflictMapText(cm))
	fmt.Println()
	fmt.Print(report.LinkOrderText(lm, objNames))
	return nil
}
