package main

import (
	"encoding/json"
	"fmt"
	"os"

	"biaslab/internal/spec"
)

// cmdSpec handles the declarative bias-on-demand spec files:
//
//	biaslab spec validate files...  check each file against the schema
//	biaslab spec expand files...    print the compiled jobs as JSON
//	biaslab spec run files...       execute every compiled job in order
//
// `spec run` goes through the same runSpec path as the hand-written
// subcommands, so it honors -server, -csv and -json (one JSON document
// per job) and its output is byte-identical to issuing the equivalent
// commands by hand.
func (a *app) cmdSpec(args []string) error {
	if len(args) == 0 {
		return usageErrorf("spec needs a verb: validate, expand or run")
	}
	verb, files := args[0], args[1:]
	switch verb {
	case "validate", "expand", "run":
	default:
		return usageErrorf("unknown spec verb %q: use validate, expand or run", verb)
	}
	if len(files) == 0 {
		return usageErrorf("spec %s needs at least one file", verb)
	}
	for _, path := range files {
		f, err := spec.ParseFile(path)
		if err != nil {
			return err
		}
		jobs, err := f.Compile()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		switch verb {
		case "validate":
			fmt.Printf("%s: ok (%d job(s))\n", path, len(jobs))
		case "expand":
			out, err := json.MarshalIndent(jobs, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(out))
		case "run":
			for _, job := range jobs {
				fmt.Fprintf(os.Stderr, "biaslab: spec %s: %s %s\n", path, job.Kind, job.Bench)
				if err := a.runSpec(job); err != nil {
					return fmt.Errorf("%s: %s: %w", path, job.Kind, err)
				}
			}
		}
	}
	return nil
}
