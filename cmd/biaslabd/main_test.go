package main

import "testing"

// TestSelfcheck runs the deploy smoke test in-process: one tiny job pushed
// through the full HTTP path twice, with every counter cross-checked. This
// is the same code -selfcheck executes, so a green test means the shipped
// smoke test itself works.
func TestSelfcheck(t *testing.T) {
	if err := runSelfcheck("test"); err != nil {
		t.Fatalf("selfcheck: %v", err)
	}
}

// TestSelfcheckRejectsBadSize: a bad -size must fail fast, not fall back
// to measuring something else.
func TestSelfcheckRejectsBadSize(t *testing.T) {
	if err := runSelfcheck("enormous"); err == nil {
		t.Fatal("selfcheck accepted an unknown workload size")
	}
}
