// Command biaslabd serves the measurement lab over HTTP: clients submit
// jobs (run, sweep-env, sweep-link, randomize, experiment), a bounded
// worker pool executes them over the shared measurement core, and results
// land in a persistent content-addressed store, so an identical request —
// from any client, before or after a restart — is a cache hit that
// performs zero new measurements.
//
// Usage:
//
//	biaslabd [-addr :8347] [-data DIR] [-workers N]
//	biaslabd -join http://coordinator:8347 [-advertise URL] [-worker-id ID]
//	biaslabd -selfcheck [-size test|small|ref]
//
// Every daemon is a cluster coordinator: shardable jobs submitted to it
// are fanned out across any workers that have joined, and run locally
// when none have. With -join the daemon additionally runs as a cluster
// worker: it registers with the named coordinator, heartbeats to renew
// its shard leases, and executes assigned shards through its own
// measurement caches, while still serving its ordinary local API.
//
// SIGINT/SIGTERM drain gracefully: in-flight sweeps checkpoint every
// completed point into fsynced per-job journals, so a restarted daemon
// resumes an interrupted job from where it stopped when the job is
// resubmitted. A draining worker answers 503 on /readyz (while /healthz
// stays 200), so the coordinator stops assigning it shards before its
// executors stop.
//
// -selfcheck is the deploy smoke test: it boots an ephemeral daemon,
// pushes one tiny job through the full HTTP path twice (miss, then cache
// hit), cross-checks the queue-depth/utilization/cache counters against
// the /metrics endpoint, and exits nonzero on any mismatch.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"biaslab/internal/audit"
	"biaslab/internal/cluster"
	"biaslab/internal/retry"
	"biaslab/internal/server"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	dataDir := flag.String("data", "biaslabd-data", "data directory (result store + job journals)")
	workers := flag.Int("workers", 2, "concurrent job executions")
	join := flag.String("join", "", "coordinator URL to join as a cluster worker (e.g. http://host:8347)")
	workerID := flag.String("worker-id", "", "cluster worker identity (default hostname-pid)")
	advertise := flag.String("advertise", "", "base URL other daemons can reach this one at (readiness probes)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "cluster shard lease TTL")
	heartbeat := flag.Duration("heartbeat", 0, "cluster heartbeat interval (default lease-ttl/4)")
	selfcheck := flag.Bool("selfcheck", false, "run the end-to-end smoke test and exit")
	sizeName := flag.String("size", "test", "workload size for -selfcheck: test, small, ref")
	flag.Parse()

	if *selfcheck {
		if err := runSelfcheck(*sizeName); err != nil {
			fmt.Fprintln(os.Stderr, "biaslabd: selfcheck FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("biaslabd: selfcheck ok")
		return
	}

	opts := serveOptions{
		addr:      *addr,
		dataDir:   *dataDir,
		workers:   *workers,
		join:      *join,
		workerID:  *workerID,
		advertise: *advertise,
		leaseTTL:  *leaseTTL,
		heartbeat: *heartbeat,
	}
	if err := serve(opts); err != nil {
		fmt.Fprintln(os.Stderr, "biaslabd:", err)
		os.Exit(1)
	}
}

type serveOptions struct {
	addr, dataDir       string
	workers             int
	join, workerID      string
	advertise           string
	leaseTTL, heartbeat time.Duration
}

// defaultWorkerID is hostname-pid: stable across heartbeats, unique
// across daemons sharing a host.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func serve(opts serveOptions) error {
	srv, err := server.New(server.Config{DataDir: opts.dataDir, Workers: opts.workers})
	if err != nil {
		return err
	}

	// Every daemon coordinates: shardable jobs it receives go to whatever
	// fleet has joined it, and degrade to local execution when none has.
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		LeaseTTL:   opts.leaseTTL,
		Heartbeat:  opts.heartbeat,
		Runner:     srv.Runner,
		ProbeReady: cluster.ProbeReadyHTTP(&http.Client{Timeout: 5 * time.Second}),
	})
	srv.SetCluster(coord, func() string { return coord.MetricsSnapshot().Render() })
	// Every submission is audited for benchmarking crimes (findings ride
	// the submit response; ?strict=1 rejects). The auditor plans through
	// the daemon's shared Runner, so its compile/link work is cached.
	srv.SetAuditor(audit.New(srv.Runner))
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	coord.Register(mux)
	httpSrv := &http.Server{Addr: opts.addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "biaslabd: serving on %s (data %s, %d workers)\n", opts.addr, opts.dataDir, opts.workers)
		errCh <- httpSrv.ListenAndServe()
	}()

	// With -join the daemon is additionally a worker of another
	// coordinator: the cluster loop executes assigned shards through this
	// daemon's shared Runner (and so its compile/link caches).
	workerDone := make(chan error, 1)
	if opts.join != "" {
		id := opts.workerID
		if id == "" {
			id = defaultWorkerID()
		}
		w := cluster.NewWorker(cluster.WorkerConfig{
			ID:        id,
			Addr:      opts.advertise,
			Slots:     opts.workers,
			Runner:    srv.Runner,
			Transport: cluster.Dial(opts.join, &http.Client{Timeout: 30 * time.Second}, retry.Policy{}),
		})
		go func() {
			fmt.Fprintf(os.Stderr, "biaslabd: joining cluster at %s as %s\n", opts.join, id)
			workerDone <- w.Run(ctx)
		}()
	} else {
		close(workerDone)
	}

	select {
	case err := <-errCh:
		srv.Shutdown(context.Background())
		return err
	case <-ctx.Done():
	}

	// Graceful drain: leave the cluster first (the worker loop sends a
	// leave on context cancellation, releasing shard leases immediately),
	// then stop accepting connections, then stop the engine. Sweeps
	// abandon their current point at the next watchdog poll; every
	// completed point is already fsynced in its job journal.
	fmt.Fprintln(os.Stderr, "biaslabd: draining (signal received)")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	select {
	case <-workerDone:
	case <-drainCtx.Done():
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "biaslabd: http shutdown:", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "biaslabd: drained")
	return nil
}
