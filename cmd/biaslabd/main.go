// Command biaslabd serves the measurement lab over HTTP: clients submit
// jobs (run, sweep-env, sweep-link, randomize, experiment), a bounded
// worker pool executes them over the shared measurement core, and results
// land in a persistent content-addressed store, so an identical request —
// from any client, before or after a restart — is a cache hit that
// performs zero new measurements.
//
// Usage:
//
//	biaslabd [-addr :8347] [-data DIR] [-workers N]
//	biaslabd -selfcheck [-size test|small|ref]
//
// SIGINT/SIGTERM drain gracefully: in-flight sweeps checkpoint every
// completed point into fsynced per-job journals, so a restarted daemon
// resumes an interrupted job from where it stopped when the job is
// resubmitted.
//
// -selfcheck is the deploy smoke test: it boots an ephemeral daemon,
// pushes one tiny job through the full HTTP path twice (miss, then cache
// hit), cross-checks the queue-depth/utilization/cache counters against
// the /metrics endpoint, and exits nonzero on any mismatch.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"biaslab/internal/server"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	dataDir := flag.String("data", "biaslabd-data", "data directory (result store + job journals)")
	workers := flag.Int("workers", 2, "concurrent job executions")
	selfcheck := flag.Bool("selfcheck", false, "run the end-to-end smoke test and exit")
	sizeName := flag.String("size", "test", "workload size for -selfcheck: test, small, ref")
	flag.Parse()

	if *selfcheck {
		if err := runSelfcheck(*sizeName); err != nil {
			fmt.Fprintln(os.Stderr, "biaslabd: selfcheck FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("biaslabd: selfcheck ok")
		return
	}

	if err := serve(*addr, *dataDir, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "biaslabd:", err)
		os.Exit(1)
	}
}

func serve(addr, dataDir string, workers int) error {
	srv, err := server.New(server.Config{DataDir: dataDir, Workers: workers})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "biaslabd: serving on %s (data %s, %d workers)\n", addr, dataDir, workers)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		srv.Shutdown(context.Background())
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, then stop the engine.
	// Sweeps abandon their current point at the next watchdog poll; every
	// completed point is already fsynced in its job journal.
	fmt.Fprintln(os.Stderr, "biaslabd: draining (signal received)")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "biaslabd: http shutdown:", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "biaslabd: drained")
	return nil
}
