package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"

	"biaslab/internal/server"
	"biaslab/internal/server/client"
)

// runSelfcheck boots an ephemeral daemon on a loopback listener and
// exercises one tiny job end-to-end through the real HTTP path:
//
//  1. submit a run job → cache miss, executes, completes;
//  2. resubmit the identical job → cache hit, zero new measurements;
//  3. cross-check queue depth, worker utilization, and the cache counters,
//     and verify the /metrics endpoint renders exactly the in-process
//     snapshot.
//
// Any mismatch is an error — the deploy smoke test for a new build or
// image.
func runSelfcheck(sizeName string) error {
	dataDir, err := os.MkdirTemp("", "biaslabd-selfcheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	srv, err := server.New(server.Config{DataDir: dataDir, Workers: 1})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	ctx := context.Background()
	cl := client.New(ts.URL)
	spec := server.JobSpec{Kind: server.KindRun, Bench: "hmmer", Machine: "core2", Size: sizeName}

	// 1: fresh submission must miss the cache and complete.
	first, err := cl.Submit(ctx, spec)
	if err != nil {
		return err
	}
	if first.Cached {
		return fmt.Errorf("fresh submission reported cached (store %s not empty?)", dataDir)
	}
	st, err := cl.Wait(ctx, first.ID)
	if err != nil {
		return err
	}
	if st.State != server.StateDone {
		return fmt.Errorf("job %s finished %s (error: %+v), want done", first.ID, st.State, st.Error)
	}
	after := srv.MetricsSnapshot()
	if after.Measurements == 0 {
		return fmt.Errorf("job done but measurements_total is 0")
	}
	if after.Instructions == 0 {
		return fmt.Errorf("job done but instructions_retired_total is 0")
	}

	// 2: identical resubmission must be a store hit with zero new work.
	second, err := cl.Submit(ctx, spec)
	if err != nil {
		return err
	}
	if !second.Cached || second.State != server.StateDone {
		return fmt.Errorf("resubmission not served from cache: %+v", second)
	}
	if st.Key != second.Key {
		return fmt.Errorf("identical specs keyed differently: %s vs %s", st.Key, second.Key)
	}
	final := srv.MetricsSnapshot()
	if final.Measurements != after.Measurements {
		return fmt.Errorf("cache hit performed measurements: %d → %d", after.Measurements, final.Measurements)
	}

	// 3: counters must be consistent with a drained, idle daemon, and the
	// endpoint must render exactly the in-process snapshot.
	if final.QueueDepth != 0 {
		return fmt.Errorf("idle daemon reports queue depth %d", final.QueueDepth)
	}
	if final.WorkersBusy != 0 {
		return fmt.Errorf("idle daemon reports %d busy workers", final.WorkersBusy)
	}
	if final.CacheHits != 1 || final.CacheMisses != 1 {
		return fmt.Errorf("cache counters hits=%d misses=%d, want 1/1", final.CacheHits, final.CacheMisses)
	}
	if final.JobsSubmitted != 2 {
		return fmt.Errorf("jobs_submitted_total %d, want 2", final.JobsSubmitted)
	}
	if got, want := final.Jobs[server.StateDone], uint64(2); got != want {
		return fmt.Errorf("jobs done %d, want %d", got, want)
	}
	if final.StoredResults != 1 {
		return fmt.Errorf("stored_results %d, want 1", final.StoredResults)
	}
	endpoint, err := cl.Metrics(ctx)
	if err != nil {
		return err
	}
	if want := srv.MetricsSnapshot().Render(); endpoint != want {
		return fmt.Errorf("/metrics drifted from the in-process snapshot:\n-- endpoint --\n%s-- snapshot --\n%s", endpoint, want)
	}
	fmt.Fprintf(os.Stderr, "biaslabd: selfcheck: %d measurements, %d instructions retired, cache 1 hit / 1 miss\n",
		final.Measurements, final.Instructions)
	return nil
}
