package main

import (
	"bytes"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// dump runs the tool against an in-memory buffer and fails the test on
// error.
func dump(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

var symbolLine = regexp.MustCompile(`(?m)^(0x[0-9a-f]{8})\s+(\d+)\s+(\S+)\s*$`)

// parseSymbols extracts name → address from the symbol report.
func parseSymbols(t *testing.T, out string) map[string]uint64 {
	t.Helper()
	syms := map[string]uint64{}
	for _, m := range symbolLine.FindAllStringSubmatch(out, -1) {
		addr, err := strconv.ParseUint(m[1], 0, 64)
		if err != nil {
			t.Fatalf("bad address %q: %v", m[1], err)
		}
		align, _ := strconv.ParseUint(m[2], 10, 64)
		if align != addr%16 {
			t.Errorf("symbol %s: align16 column says %d, address %#x mod 16 is %d", m[3], align, addr, addr%16)
		}
		syms[m[3]] = addr
	}
	if len(syms) == 0 {
		t.Fatalf("no symbols parsed from:\n%s", out)
	}
	return syms
}

// TestDumpBenchmarkInvariants compiles and links a benchmark through the
// full dump path and checks the structural invariants of the reports:
// every unit appears in the section table, the image line is present, the
// symbol table is address-sorted and starts at _start, and the requested
// disassembly has exactly as many instruction lines as advertised.
func TestDumpBenchmarkInvariants(t *testing.T) {
	out := dump(t, "-bench", "hmmer", "-disas", "main")

	if !strings.Contains(out, "sections (gcc -O2; link order as shown):") {
		t.Errorf("missing section table header in:\n%.400s", out)
	}
	if !regexp.MustCompile(`(?m)^image: text 0x[0-9a-f]+\+\d+, data 0x[0-9a-f]+\+\d+, bss 0x[0-9a-f]+\+\d+, entry 0x[0-9a-f]+$`).MatchString(out) {
		t.Errorf("missing or malformed image line in:\n%.1000s", out)
	}
	if !strings.Contains(out, "relocations:") {
		t.Error("missing relocation report")
	}

	// Symbols must come out sorted by final address, _start first.
	matches := symbolLine.FindAllStringSubmatch(out, -1)
	var prev uint64
	for i, m := range matches {
		addr, _ := strconv.ParseUint(m[1], 0, 64)
		if i == 0 && m[3] != "_start" {
			t.Errorf("first symbol is %s at %#x, want _start", m[3], addr)
		}
		if addr < prev {
			t.Errorf("symbol table not address-sorted: %s at %#x after %#x", m[3], addr, prev)
		}
		prev = addr
	}
	syms := parseSymbols(t, out)
	if _, ok := syms["main"]; !ok {
		t.Error("benchmark image has no main symbol")
	}

	// The disassembly header advertises an instruction count; the listing
	// must contain exactly that many "addr: mnemonic" lines.
	header := regexp.MustCompile(`disassembly of main \((\d+) instructions\):\n`)
	hm := header.FindStringSubmatchIndex(out)
	if hm == nil {
		t.Fatalf("missing disassembly header in:\n%.400s", out)
	}
	want, _ := strconv.Atoi(out[hm[2]:hm[3]])
	listing := out[hm[1]:]
	got := len(regexp.MustCompile(`(?m)^[0-9a-f]{8}: `).FindAllString(listing, -1))
	if got != want {
		t.Errorf("disassembly of main: header says %d instructions, listing has %d lines", want, got)
	}
	// And the first listed address is main's symbol-table address.
	first := regexp.MustCompile(`(?m)^([0-9a-f]{8}): `).FindStringSubmatch(listing)
	if addr, _ := strconv.ParseUint(first[1], 16, 64); addr != syms["main"] {
		t.Errorf("disassembly starts at %#x, symbol table places main at %#x", addr, syms["main"])
	}
}

// TestDumpLinkOrderMovesSymbols is the tool's reason to exist: relinking
// the same objects in a different order must keep the symbol set and
// per-unit section sizes identical while moving final addresses — the
// layout channel the paper's link-order experiments measure.
func TestDumpLinkOrderMovesSymbols(t *testing.T) {
	base := dump(t, "-bench", "hmmer", "-symbols")
	nUnits := len(dumpSectionUnits(t, dump(t, "-bench", "hmmer", "-sections")))
	if nUnits < 2 {
		t.Fatalf("hmmer has %d units; need at least 2 to permute", nUnits)
	}
	// Rotate the link order by one.
	perm := make([]string, nUnits)
	for i := range perm {
		perm[i] = strconv.Itoa((i + 1) % nUnits)
	}
	rotated := dump(t, "-bench", "hmmer", "-symbols", "-order", strings.Join(perm, ","))

	a, b := parseSymbols(t, base), parseSymbols(t, rotated)
	if len(a) != len(b) {
		t.Fatalf("symbol count changed with link order: %d vs %d", len(a), len(b))
	}
	moved := 0
	for name, addr := range a {
		baddr, ok := b[name]
		if !ok {
			t.Errorf("symbol %s vanished after reordering", name)
			continue
		}
		if baddr != addr {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no symbol moved after rotating the link order; the layout channel is dead")
	}
}

// TestDumpSectionSizesStableAcrossOrder: per-unit section sizes are a
// compile-time property and must not depend on link order.
func TestDumpSectionSizesStableAcrossOrder(t *testing.T) {
	units := dumpSectionUnits(t, dump(t, "-bench", "libquantum", "-sections"))
	n := len(units)
	perm := make([]string, n)
	for i := range perm {
		perm[i] = strconv.Itoa(n - 1 - i)
	}
	reversed := dumpSectionUnits(t, dump(t, "-bench", "libquantum", "-sections", "-order", strings.Join(perm, ",")))

	canon := func(rows []string) []string {
		out := append([]string(nil), rows...)
		sort.Strings(out)
		return out
	}
	ca, cb := canon(units), canon(reversed)
	for i := range ca {
		if i >= len(cb) || ca[i] != cb[i] {
			t.Fatalf("per-unit section rows changed with link order:\n%v\nvs\n%v", ca, cb)
		}
	}
}

// dumpSectionUnits returns the per-unit rows of the section table.
func dumpSectionUnits(t *testing.T, out string) []string {
	t.Helper()
	var rows []string
	inTable := false
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "sections ("):
			inTable = true
		case inTable && strings.HasPrefix(line, "image:"), inTable && line == "":
			return rows
		case inTable && !strings.HasPrefix(line, "unit") && !strings.HasPrefix(line, "---"):
			rows = append(rows, strings.Join(strings.Fields(line), " "))
		}
	}
	if len(rows) == 0 {
		t.Fatalf("no section rows in:\n%.400s", out)
	}
	return rows
}

// TestDumpUsageErrors: the tool must reject argument errors rather than
// dumping something misleading.
func TestDumpUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{},                                    // need -bench or -src
		{"-bench", "nope"},                    // unknown benchmark
		{"-bench", "hmmer", "-order", "0"},    // wrong arity
		{"-bench", "hmmer", "-disas", "nope"}, // unknown function
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
