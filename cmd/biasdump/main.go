// Command biasdump is the toolchain inspector: it compiles a benchmark (or
// a cmini source file) and dumps what the linker and loader will see —
// section sizes, the symbol table with final addresses, relocations, and
// disassembly. It exists to make the link-order bias channel *visible*:
// run it twice with different -order arguments and diff the addresses.
//
// Usage:
//
//	biasdump -bench perlbench [-O3] [-icc] [-order 3,1,0,2] [-disas main]
//	biasdump -src prog.cm [-disas main]
//
// Subreports can be selected with -sections, -symbols, -relocs (default:
// all three).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/isa"
	"biaslab/internal/linker"
	"biaslab/internal/loader"
	"biaslab/internal/machine"
	"biaslab/internal/obj"
	"biaslab/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "biasdump:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("biasdump", flag.ContinueOnError)
	benchName := fs.String("bench", "", "benchmark to inspect")
	srcPath := fs.String("src", "", "standalone cmini source file to inspect")
	o3 := fs.Bool("O3", false, "compile at -O3 (default -O2)")
	icc := fs.Bool("icc", false, "use the icc personality")
	orderSpec := fs.String("order", "", "link order as comma-separated unit indices (default source order)")
	disas := fs.String("disas", "", "disassemble one function")
	sections := fs.Bool("sections", false, "show only the section report")
	symbols := fs.Bool("symbols", false, "show only the symbol report")
	relocs := fs.Bool("relocs", false, "show only the relocation report")
	trace := fs.Uint64("trace", 0, "run on the Core 2 model and print the first N trace lines")
	mix := fs.Bool("mix", false, "run on the Core 2 model and print the dynamic instruction mix")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := compiler.Config{Level: compiler.O2}
	if *o3 {
		cfg.Level = compiler.O3
	}
	if *icc {
		cfg.Personality = compiler.ICC
	}

	var sources []compiler.Source
	switch {
	case *benchName != "":
		b, ok := bench.ByName(*benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", *benchName)
		}
		sources = b.Sources(bench.SizeTest)
	case *srcPath != "":
		text, err := os.ReadFile(*srcPath)
		if err != nil {
			return err
		}
		sources = []compiler.Source{{Name: *srcPath, Text: string(text)}}
	default:
		return fmt.Errorf("need -bench or -src")
	}

	objs, _, err := compiler.Compile(sources, cfg)
	if err != nil {
		return err
	}
	if *orderSpec != "" {
		perm, err := parseOrder(*orderSpec, len(objs))
		if err != nil {
			return err
		}
		reordered := make([]*obj.Object, len(objs))
		for i, src := range perm {
			reordered[i] = objs[src]
		}
		objs = reordered
	}
	exe, err := linker.Link(objs, linker.Options{})
	if err != nil {
		return err
	}

	all := !*sections && !*symbols && !*relocs
	if all || *sections {
		printSections(out, objs, exe, cfg)
	}
	if all || *symbols {
		printSymbols(out, exe)
	}
	if all || *relocs {
		printRelocs(out, objs)
	}
	if *disas != "" {
		if err := printDisas(out, exe, *disas); err != nil {
			return err
		}
	}
	if *trace > 0 || *mix {
		return runTraced(out, exe, *trace, *mix)
	}
	return nil
}

// runTraced executes the image on the Core 2 model with tracing attached.
func runTraced(out io.Writer, exe *linker.Executable, traceN uint64, mix bool) error {
	img, err := loader.Load(exe, loader.Options{Env: loader.SyntheticEnv(512)})
	if err != nil {
		return err
	}
	m := machine.New(machine.Core2())
	ct := &machine.CountingTracer{}
	if traceN > 0 {
		fmt.Fprintf(out, "trace (first %d instructions, Core 2):\n", traceN)
		m.SetTracer(multiTracer{&machine.WriterTracer{W: out, Limit: traceN}, ct})
	} else {
		m.SetTracer(ct)
	}
	res, err := m.Run(img, 1<<31)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nrun: %d instructions, %d cycles, IPC %.2f, checksum %d\n",
		res.Counters.Instructions, res.Counters.Cycles, res.Counters.IPC(), res.Checksum)
	if mix {
		t := &report.Table{Title: "dynamic instruction mix:", Headers: []string{"class", "count", "share"}}
		classes := ct.Mix()
		keys := make([]string, 0, len(classes))
		for k := range classes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			t.AddRow(k, classes[k], fmt.Sprintf("%.1f%%", 100*float64(classes[k])/float64(res.Counters.Instructions)))
		}
		fmt.Fprint(out, t.String())
	}
	return nil
}

// multiTracer fans one event out to several tracers.
type multiTracer []machine.Tracer

func (mt multiTracer) Trace(ev machine.TraceEvent) {
	for _, t := range mt {
		t.Trace(ev)
	}
}

func parseOrder(spec string, n int) ([]int, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("order has %d entries, program has %d units", len(parts), n)
	}
	perm := make([]int, n)
	seen := make([]bool, n)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 || v >= n || seen[v] {
			return nil, fmt.Errorf("bad order entry %q", p)
		}
		perm[i] = v
		seen[v] = true
	}
	return perm, nil
}

func printSections(out io.Writer, objs []*obj.Object, exe *linker.Executable, cfg compiler.Config) {
	t := &report.Table{
		Title:   fmt.Sprintf("sections (%s; link order as shown):", cfg),
		Headers: []string{"unit", "text bytes", "data bytes", "bss bytes", "symbols", "relocs"},
	}
	for _, o := range objs {
		t.AddRow(o.Name, len(o.Text), len(o.Data), o.BSSSize, len(o.Symbols), len(o.Relocs))
	}
	fmt.Fprint(out, t.String())
	fmt.Fprintf(out, "\nimage: text %#x+%d, data %#x+%d, bss %#x+%d, entry %#x\n\n",
		exe.TextBase, len(exe.Text), exe.DataBase, len(exe.Data), exe.BSSBase, exe.BSSSize, exe.Entry)
}

func printSymbols(out io.Writer, exe *linker.Executable) {
	type row struct {
		name string
		addr uint64
	}
	rows := make([]row, 0, len(exe.Symbols))
	for name, addr := range exe.Symbols {
		rows = append(rows, row{name, addr})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].addr < rows[j].addr })
	t := &report.Table{Title: "symbols:", Headers: []string{"address", "align16", "name"}}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%#08x", r.addr), r.addr%16, r.name)
	}
	fmt.Fprint(out, t.String())
	fmt.Fprintln(out)
}

func printRelocs(out io.Writer, objs []*obj.Object) {
	t := &report.Table{Title: "relocations:", Headers: []string{"unit", "section", "offset", "kind", "symbol", "addend"}}
	total := 0
	for _, o := range objs {
		for _, r := range o.Relocs {
			total++
			if total <= 40 {
				t.AddRow(o.Name, r.Section.String(), fmt.Sprintf("%#x", r.Offset), r.Kind.String(), r.Sym, r.Addend)
			}
		}
	}
	fmt.Fprint(out, t.String())
	if total > 40 {
		fmt.Fprintf(out, "... and %d more\n", total-40)
	}
	fmt.Fprintln(out)
}

func printDisas(out io.Writer, exe *linker.Executable, name string) error {
	for _, f := range exe.Funcs {
		if f.Name == name {
			start := f.Addr - exe.TextBase
			code := exe.Text[start : start+f.Size]
			fmt.Fprintf(out, "disassembly of %s (%d instructions):\n", name, f.Size/uint64(isa.InstSize))
			fmt.Fprint(out, isa.Disassemble(code, f.Addr))
			return nil
		}
	}
	return fmt.Errorf("no function %q in image", name)
}
