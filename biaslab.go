// Package biaslab is a laboratory for studying measurement bias in
// computer-systems performance evaluation. It is a from-scratch, pure-Go
// reproduction of Mytkowicz, Diwan, Hauswirth and Sweeney, "Producing Wrong
// Data Without Doing Anything Obviously Wrong!" (ASPLOS 2009).
//
// The library contains a complete miniature systems stack — a C-like
// language and optimizing compiler with gcc/icc personalities, an object
// format and linker, a Unix-style loader, and cycle-approximate simulators
// of the paper's three platforms (Pentium 4, Core 2, m5 O3CPU) — plus
// twelve benchmark programs modelled on the SPEC CPU2006 C suite. On top of
// that stack it implements the paper's contribution:
//
//   - Bias measurement: sweep an "innocuous" setup factor (UNIX environment
//     size, link order) and watch the measured speedup of -O3 over -O2
//     swing and even change sign (EnvSweep, LinkSweep, SuiteEnvStudy).
//   - Setup randomization: evaluate across many randomized setups and
//     report a confidence interval instead of a biased point
//     (RandomSetups, EstimateSpeedup).
//   - Causal analysis: intervene on the suspected cause directly and rank
//     hardware events by correlation with the effect (CausalStudy).
//
// Quick start:
//
//	r := biaslab.NewRunner(biaslab.SizeSmall)
//	b, _ := biaslab.Benchmark("perlbench")
//	small := biaslab.DefaultSetup("core2")          // 512-byte environment
//	big := small
//	big.EnvBytes = 4000                             // a fat shell environment
//	s1, _, _, _ := r.Speedup(b, small, biaslab.O2, biaslab.O3)
//	s2, _, _, _ := r.Speedup(b, big, biaslab.O2, biaslab.O3)
//	// s1 and s2 disagree — possibly about which level is faster.
//
// Every table and figure of the paper's evaluation can be regenerated with
// a Lab (see NewLab) or from the command line with cmd/biaslab.
package biaslab

import (
	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/core"
	"biaslab/internal/experiments"
	"biaslab/internal/machine"
	"biaslab/internal/stats"
)

// Workload sizes for the benchmark suite.
type Size = bench.Size

// Workload size presets.
const (
	SizeTest  = bench.SizeTest
	SizeSmall = bench.SizeSmall
	SizeRef   = bench.SizeRef
)

// Optimization levels of the built-in compiler.
const (
	O0 = compiler.O0
	O1 = compiler.O1
	O2 = compiler.O2
	O3 = compiler.O3
)

// Compiler personalities (the paper's two compilers).
const (
	GCC = compiler.GCC
	ICC = compiler.ICC
)

// Core types, re-exported from the implementation packages.
type (
	// Setup is one complete experimental configuration: machine, compiler,
	// environment size, link order, and the causal-analysis stack shift.
	Setup = core.Setup
	// Runner executes benchmarks under setups with object caching and
	// output-stability checking.
	Runner = core.Runner
	// Measurement is one run's cycles, counters and checksum.
	Measurement = core.Measurement
	// BiasReport summarizes speedup variation across a setup sweep.
	BiasReport = core.BiasReport
	// EnvPoint and LinkPoint are sweep samples.
	EnvPoint = core.EnvPoint
	// LinkPoint is one link order's measurement in a sweep.
	LinkPoint = core.LinkPoint
	// RobustEstimate is the randomized-setup speedup estimate.
	RobustEstimate = core.RobustEstimate
	// CausalReport is the outcome of an intervention study.
	CausalReport = core.CausalReport
	// Comparison is a robust A/B toolchain comparison across setups.
	Comparison = core.Comparison
	// CompilerConfig selects personality and level.
	CompilerConfig = compiler.Config
	// BenchmarkProgram is one suite member.
	BenchmarkProgram = bench.Benchmark
	// Counters is the simulated machine's performance-monitor surface.
	Counters = machine.Counters
	// Profile is a per-function cycle attribution (see Runner.MeasureProfiled).
	Profile = machine.Profile
	// Interval is a confidence interval.
	Interval = stats.Interval
	// Lab regenerates the paper's tables and figures.
	Lab = experiments.Lab
	// LabOptions tunes experiment cost.
	LabOptions = experiments.Options
	// ExperimentResult is one regenerated artifact (text + CSV).
	ExperimentResult = experiments.Result
)

// NewRunner builds a Runner at the given workload size.
func NewRunner(size Size) *Runner { return core.NewRunner(size) }

// NewLab builds a Lab for regenerating the paper's tables and figures.
func NewLab(opt LabOptions) *Lab { return experiments.NewLab(opt) }

// ExperimentIDs lists the regenerable artifacts (F1–F9, T1–T4).
func ExperimentIDs() []string { return experiments.IDs() }

// Benchmark looks up a suite member by name ("perlbench", "bzip2", …).
func Benchmark(name string) (*BenchmarkProgram, bool) { return bench.ByName(name) }

// Benchmarks returns the full suite, sorted by name.
func Benchmarks() []*BenchmarkProgram { return bench.All() }

// Machines lists the simulated platform names accepted in Setup.Machine.
func Machines() []string { return []string{"p4", "core2", "m5"} }

// DefaultSetup returns the baseline setup experiments perturb: gcc -O2,
// 512-byte environment, default link order.
func DefaultSetup(machineName string) Setup { return core.DefaultSetup(machineName) }

// EnvSweep measures the O3-over-O2 speedup at each environment size.
func EnvSweep(r *Runner, b *BenchmarkProgram, setup Setup, sizes []uint64) ([]EnvPoint, error) {
	return core.EnvSweep(r, b, setup, sizes)
}

// DefaultEnvSizes returns the canonical 0–4 KiB environment sweep.
func DefaultEnvSizes(step uint64) []uint64 { return core.DefaultEnvSizes(step) }

// LinkSweep measures the speedup under default, alphabetical, and n random
// link orders.
func LinkSweep(r *Runner, b *BenchmarkProgram, setup Setup, n int, seed uint64) ([]LinkPoint, error) {
	return core.LinkSweep(r, b, setup, n, seed)
}

// EstimateSpeedup runs the paper's remedy: n randomized setups and a
// confidence interval for the speedup.
func EstimateSpeedup(r *Runner, b *BenchmarkProgram, base Setup, n int, seed uint64) (*RobustEstimate, error) {
	return core.EstimateSpeedup(r, b, base, n, seed)
}

// EstimateSpeedupAdaptive samples randomized setups until the 95% CI
// half-width falls below tol, answering "how many setups are enough?".
func EstimateSpeedupAdaptive(r *Runner, b *BenchmarkProgram, base Setup, tol float64, minN, maxN int, seed uint64) (*RobustEstimate, error) {
	return core.EstimateSpeedupAdaptive(r, b, base, tol, minN, maxN, seed)
}

// CausalStudy intervenes on the stack displacement directly and correlates
// hardware events with cycles.
func CausalStudy(r *Runner, b *BenchmarkProgram, setup Setup, maxShift, step uint64) (*CausalReport, error) {
	return core.CausalStudy(r, b, setup, maxShift, step)
}

// CompareConfigs robustly compares two toolchain configurations on one
// benchmark across shared randomized setups (paired design).
func CompareConfigs(r *Runner, b *BenchmarkProgram, base Setup, a, bCfg CompilerConfig, n int, seed uint64) (*Comparison, error) {
	return core.CompareConfigs(r, b, base, a, bCfg, n, seed)
}

// NewBiasReport summarizes a slice of speedups from any sweep.
func NewBiasReport(benchName, machineName, factor string, speedups []float64) BiasReport {
	return core.NewBiasReport(benchName, machineName, factor, speedups)
}
