// Package biaslab is a laboratory for studying measurement bias in
// computer-systems performance evaluation. It is a from-scratch, pure-Go
// reproduction of Mytkowicz, Diwan, Hauswirth and Sweeney, "Producing Wrong
// Data Without Doing Anything Obviously Wrong!" (ASPLOS 2009).
//
// The library contains a complete miniature systems stack — a C-like
// language and optimizing compiler with gcc/icc personalities, an object
// format and linker, a Unix-style loader, and cycle-approximate simulators
// of the paper's three platforms (Pentium 4, Core 2, m5 O3CPU) — plus
// twelve benchmark programs modelled on the SPEC CPU2006 C suite. On top of
// that stack it implements the paper's contribution:
//
//   - Bias measurement: sweep an "innocuous" setup factor (UNIX environment
//     size, link order) and watch the measured speedup of -O3 over -O2
//     swing and even change sign (EnvSweep, LinkSweep, SuiteEnvStudy).
//   - Setup randomization: evaluate across many randomized setups and
//     report a confidence interval instead of a biased point
//     (RandomSetups, EstimateSpeedup).
//   - Causal analysis: intervene on the suspected cause directly and rank
//     hardware events by correlation with the effect (CausalStudy).
//
// Quick start:
//
//	ctx := context.Background()
//	r := biaslab.NewRunner(biaslab.SizeSmall)
//	b, _ := biaslab.Benchmark("perlbench")
//	small := biaslab.DefaultSetup("core2")          // 512-byte environment
//	big := small
//	big.EnvBytes = 4000                             // a fat shell environment
//	s1, _, _, _ := r.Speedup(ctx, b, small, biaslab.O2, biaslab.O3)
//	s2, _, _, _ := r.Speedup(ctx, b, big, biaslab.O2, biaslab.O3)
//	// s1 and s2 disagree — possibly about which level is faster.
//
// Every measurement entry point takes a context.Context and stops promptly
// when it is cancelled; failures anywhere in the pipeline surface as typed
// *MeasurementError values carrying the stage and the exact setup that
// failed. Long studies can be checkpointed through the Checkpoint
// interface and resumed bit-identically after a crash or kill.
//
// Every table and figure of the paper's evaluation can be regenerated with
// a Lab (see NewLab) or from the command line with cmd/biaslab.
package biaslab

import (
	"context"

	"biaslab/internal/analysis"
	"biaslab/internal/bench"
	"biaslab/internal/compiler"
	"biaslab/internal/core"
	"biaslab/internal/experiments"
	"biaslab/internal/journal"
	"biaslab/internal/machine"
	"biaslab/internal/stats"
)

// Workload sizes for the benchmark suite.
type Size = bench.Size

// Workload size presets.
const (
	SizeTest  = bench.SizeTest
	SizeSmall = bench.SizeSmall
	SizeRef   = bench.SizeRef
)

// Optimization levels of the built-in compiler.
const (
	O0 = compiler.O0
	O1 = compiler.O1
	O2 = compiler.O2
	O3 = compiler.O3
)

// Compiler personalities (the paper's two compilers).
const (
	GCC = compiler.GCC
	ICC = compiler.ICC
)

// Core types, re-exported from the implementation packages.
type (
	// Setup is one complete experimental configuration: machine, compiler,
	// environment size, link order, and the causal-analysis stack shift.
	Setup = core.Setup
	// Runner executes benchmarks under setups with object caching and
	// output-stability checking.
	Runner = core.Runner
	// Measurement is one run's cycles, counters and checksum.
	Measurement = core.Measurement
	// BiasReport summarizes speedup variation across a setup sweep.
	BiasReport = core.BiasReport
	// EnvPoint and LinkPoint are sweep samples.
	EnvPoint = core.EnvPoint
	// LinkPoint is one link order's measurement in a sweep.
	LinkPoint = core.LinkPoint
	// TenantPoint is one co-runner's sample in a tenant sweep.
	TenantPoint = core.TenantPoint
	// CoRunner configures a co-running tenant on the shared machine.
	CoRunner = core.CoRunner
	// RobustEstimate is the randomized-setup speedup estimate.
	RobustEstimate = core.RobustEstimate
	// CausalReport is the outcome of an intervention study.
	CausalReport = core.CausalReport
	// Comparison is a robust A/B toolchain comparison across setups.
	Comparison = core.Comparison
	// CompilerConfig selects personality and level.
	CompilerConfig = compiler.Config
	// BenchmarkProgram is one suite member.
	BenchmarkProgram = bench.Benchmark
	// Counters is the simulated machine's performance-monitor surface.
	Counters = machine.Counters
	// Profile is a per-function cycle attribution (see Runner.MeasureProfiled).
	Profile = machine.Profile
	// Interval is a confidence interval.
	Interval = stats.Interval
	// Lab regenerates the paper's tables and figures.
	Lab = experiments.Lab
	// LabOptions tunes experiment cost.
	LabOptions = experiments.Options
	// ExperimentResult is one regenerated artifact (text + CSV).
	ExperimentResult = experiments.Result
	// MeasurementError is the typed failure of one measurement: the
	// pipeline stage, the benchmark, and the exact setup that failed.
	MeasurementError = core.MeasurementError
	// PanicError wraps a panic caught at the measurement boundary.
	PanicError = core.PanicError
	// Stage identifies a measurement pipeline stage in a MeasurementError.
	Stage = core.Stage
	// Checkpoint persists completed sweep points for crash-safe resume.
	Checkpoint = core.Checkpoint
	// EnvPlan is the bias oracle's measurement plan for an env sweep — the
	// predicted transition boundaries an adaptive sweep measures around.
	EnvPlan = analysis.EnvPlan
	// AdaptiveSweepStats is the adaptive sweep's measurement ledger.
	AdaptiveSweepStats = core.AdaptiveSweepStats
	// MachineConfig describes a simulated machine for Runner.RegisterMachine;
	// CacheConfig, PredictorConfig and Penalties are its components.
	MachineConfig   = machine.Config
	CacheConfig     = machine.CacheConfig
	PredictorConfig = machine.PredictorConfig
	Penalties       = machine.Penalties
)

// Pipeline stages, re-exported for errors.As inspection of failures.
const (
	StageCompile = core.StageCompile
	StageLink    = core.StageLink
	StageLoad    = core.StageLoad
	StageMeasure = core.StageMeasure
)

// NewRunner builds a Runner at the given workload size.
func NewRunner(size Size) *Runner { return core.NewRunner(size) }

// NewLab builds a Lab for regenerating the paper's tables and figures.
func NewLab(opt LabOptions) *Lab { return experiments.NewLab(opt) }

// NewLabCtx builds a Lab whose measurements stop when ctx is cancelled
// and, when ck is non-nil, checkpoint into ck for crash-safe resume.
func NewLabCtx(ctx context.Context, opt LabOptions, ck Checkpoint) *Lab {
	return experiments.NewLabCtx(ctx, opt, ck)
}

// Journal is the append-only JSONL Checkpoint implementation.
type Journal = journal.Journal

// OpenJournal opens (creating if absent) a JSONL checkpoint journal,
// tolerating the torn final record a kill mid-write leaves behind.
func OpenJournal(path string) (*Journal, error) { return journal.Open(path) }

// ExperimentIDs lists the regenerable artifacts (F1–F9, T1–T4).
func ExperimentIDs() []string { return experiments.IDs() }

// Benchmark looks up a suite member by name ("perlbench", "bzip2", …).
func Benchmark(name string) (*BenchmarkProgram, bool) { return bench.ByName(name) }

// Benchmarks returns the full suite, sorted by name.
func Benchmarks() []*BenchmarkProgram { return bench.All() }

// Machines lists the simulated platform names accepted in Setup.Machine.
func Machines() []string { return []string{"p4", "core2", "m5"} }

// DefaultSetup returns the baseline setup experiments perturb: gcc -O2,
// 512-byte environment, default link order.
func DefaultSetup(machineName string) Setup { return core.DefaultSetup(machineName) }

// EnvSweep measures the O3-over-O2 speedup at each environment size.
func EnvSweep(ctx context.Context, r *Runner, b *BenchmarkProgram, setup Setup, sizes []uint64) ([]EnvPoint, error) {
	return core.EnvSweep(ctx, r, b, setup, sizes)
}

// EnvSweepCheckpointed is EnvSweep with checkpoint/resume: completed
// points are recorded in ck and replayed on a rerun.
func EnvSweepCheckpointed(ctx context.Context, r *Runner, b *BenchmarkProgram, setup Setup, sizes []uint64, ck Checkpoint) ([]EnvPoint, error) {
	return core.EnvSweepCheckpointed(ctx, r, b, setup, sizes, ck)
}

// DefaultEnvSizes returns the canonical 0–4 KiB environment sweep.
func DefaultEnvSizes(step uint64) []uint64 { return core.DefaultEnvSizes(step) }

// PlanEnvSweep asks the bias oracle for an env sweep's predicted transition
// boundaries — the plan EnvSweepAdaptive measures against.
func PlanEnvSweep(r *Runner, b *BenchmarkProgram, setup Setup, sizes []uint64) (*EnvPlan, error) {
	return core.PlanEnvSweep(r, b, setup, sizes)
}

// EnvSweepAdaptive is EnvSweep guided by the bias oracle: it measures the
// predicted transition boundaries plus verification points, interpolates
// plateaus that verify, and re-measures densely any plateau whose
// verification fails — byte-identical to EnvSweep when predictions hold,
// still correct when they don't.
func EnvSweepAdaptive(ctx context.Context, r *Runner, b *BenchmarkProgram, setup Setup, sizes []uint64, ck Checkpoint) ([]EnvPoint, AdaptiveSweepStats, error) {
	return core.EnvSweepAdaptive(ctx, r, b, setup, sizes, ck)
}

// LinkSweep measures the speedup under default, alphabetical, and n random
// link orders.
func LinkSweep(ctx context.Context, r *Runner, b *BenchmarkProgram, setup Setup, n int, seed uint64) ([]LinkPoint, error) {
	return core.LinkSweep(ctx, r, b, setup, n, seed)
}

// LinkSweepCheckpointed is LinkSweep with checkpoint/resume.
func LinkSweepCheckpointed(ctx context.Context, r *Runner, b *BenchmarkProgram, setup Setup, n int, seed uint64, ck Checkpoint) ([]LinkPoint, error) {
	return core.LinkSweepCheckpointed(ctx, r, b, setup, n, seed, ck)
}

// TenantSweep measures b's O3-over-O2 speedup against every co-runner in
// corunners (core.TenantIdle for an idle machine), sharing one machine's
// cache/TLB/predictor hierarchy between subject and tenant.
func TenantSweep(ctx context.Context, r *Runner, b *BenchmarkProgram, setup Setup, corunners []string) ([]TenantPoint, error) {
	return core.TenantSweep(ctx, r, b, setup, corunners)
}

// DefaultCoRunners is the canonical co-runner panel the tenant sweep
// measures: an idle machine plus a spread of cache-light to cache-hungry
// tenants.
func DefaultCoRunners() []string { return core.DefaultCoRunners() }

// EstimateSpeedup runs the paper's remedy: n randomized setups and a
// confidence interval for the speedup.
func EstimateSpeedup(ctx context.Context, r *Runner, b *BenchmarkProgram, base Setup, n int, seed uint64) (*RobustEstimate, error) {
	return core.EstimateSpeedup(ctx, r, b, base, n, seed)
}

// EstimateSpeedupAdaptive samples randomized setups until the 95% CI
// half-width falls below tol, answering "how many setups are enough?".
func EstimateSpeedupAdaptive(ctx context.Context, r *Runner, b *BenchmarkProgram, base Setup, tol float64, minN, maxN int, seed uint64) (*RobustEstimate, error) {
	return core.EstimateSpeedupAdaptive(ctx, r, b, base, tol, minN, maxN, seed)
}

// CausalStudy intervenes on the stack displacement directly and correlates
// hardware events with cycles.
func CausalStudy(ctx context.Context, r *Runner, b *BenchmarkProgram, setup Setup, maxShift, step uint64) (*CausalReport, error) {
	return core.CausalStudy(ctx, r, b, setup, maxShift, step)
}

// CompareConfigs robustly compares two toolchain configurations on one
// benchmark across shared randomized setups (paired design).
func CompareConfigs(ctx context.Context, r *Runner, b *BenchmarkProgram, base Setup, a, bCfg CompilerConfig, n int, seed uint64) (*Comparison, error) {
	return core.CompareConfigs(ctx, r, b, base, a, bCfg, n, seed)
}

// IsTransient reports whether err is marked transient (retry may succeed).
func IsTransient(err error) bool { return core.IsTransient(err) }

// NewBiasReport summarizes a slice of speedups from any sweep.
func NewBiasReport(benchName, machineName, factor string, speedups []float64) BiasReport {
	return core.NewBiasReport(benchName, machineName, factor, speedups)
}
