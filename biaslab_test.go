package biaslab_test

import (
	"context"
	"testing"

	"biaslab"
)

func TestFacadeBenchmarks(t *testing.T) {
	all := biaslab.Benchmarks()
	if len(all) != 12 {
		t.Fatalf("suite has %d members, want 12", len(all))
	}
	if _, ok := biaslab.Benchmark("perlbench"); !ok {
		t.Error("perlbench lookup failed")
	}
	if _, ok := biaslab.Benchmark("nonesuch"); ok {
		t.Error("bogus lookup succeeded")
	}
	if len(biaslab.Machines()) != 3 {
		t.Error("want 3 machines")
	}
	if len(biaslab.ExperimentIDs()) != 16 {
		t.Error("want 16 experiments")
	}
}

func TestFacadeQuickstartPath(t *testing.T) {
	r := biaslab.NewRunner(biaslab.SizeTest)
	b, _ := biaslab.Benchmark("bzip2")
	setup := biaslab.DefaultSetup("core2")
	speedup, o2, o3, err := r.Speedup(context.Background(), b, setup, biaslab.O2, biaslab.O3)
	if err != nil {
		t.Fatal(err)
	}
	if speedup <= 0 {
		t.Errorf("speedup = %v", speedup)
	}
	if o2.Checksum != o3.Checksum {
		t.Error("optimization changed program output")
	}
}

func TestFacadeSweeps(t *testing.T) {
	r := biaslab.NewRunner(biaslab.SizeTest)
	b, _ := biaslab.Benchmark("milc")
	setup := biaslab.DefaultSetup("m5")
	env, err := biaslab.EnvSweep(context.Background(), r, b, setup, []uint64{8, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(env) != 2 {
		t.Error("env sweep wrong length")
	}
	link, err := biaslab.LinkSweep(context.Background(), r, b, setup, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(link) != 4 {
		t.Error("link sweep wrong length")
	}
	sp := []float64{env[0].Speedup, env[1].Speedup}
	rep := biaslab.NewBiasReport("milc", "m5", "env", sp)
	if rep.Speedups.N != 2 {
		t.Error("bias report wrong")
	}
}

func TestFacadeRandomizeAndCausal(t *testing.T) {
	r := biaslab.NewRunner(biaslab.SizeTest)
	b, _ := biaslab.Benchmark("hmmer")
	est, err := biaslab.EstimateSpeedup(context.Background(), r, b, biaslab.DefaultSetup("m5"), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est.N != 4 {
		t.Error("estimate sample count wrong")
	}
	rep, err := biaslab.CausalStudy(context.Background(), r, b, biaslab.DefaultSetup("m5"), 256, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Errorf("causal points = %d", len(rep.Points))
	}
}

func TestFacadeLab(t *testing.T) {
	lab := biaslab.NewLab(biaslab.LabOptions{Size: biaslab.SizeTest})
	res, err := lab.ByID("T3")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "T3" || res.Text == "" || res.CSV == "" {
		t.Error("lab result incomplete")
	}
}
