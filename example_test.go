package biaslab_test

import (
	"context"
	"fmt"

	"biaslab"
)

// The core phenomenon: changing only the environment size leaves the
// program's output untouched while the cycle counts move.
func Example() {
	r := biaslab.NewRunner(biaslab.SizeTest)
	b, _ := biaslab.Benchmark("perlbench")

	lean := biaslab.DefaultSetup("p4")
	lean.EnvBytes = 8
	fat := lean
	fat.EnvBytes = 4096

	m1, err := r.Measure(context.Background(), b, lean)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m2, err := r.Measure(context.Background(), b, fat)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("output identical:", m1.Checksum == m2.Checksum)
	fmt.Println("cycles identical:", m1.Cycles == m2.Cycles)
	// Output:
	// output identical: true
	// cycles identical: false
}

// Link order is a permutation of translation units; the default and the
// alphabetical order are both "natural" choices a build system might make —
// and they measure differently.
func ExampleLinkSweep() {
	r := biaslab.NewRunner(biaslab.SizeTest)
	b, _ := biaslab.Benchmark("gcc")
	points, err := biaslab.LinkSweep(context.Background(), r, b, biaslab.DefaultSetup("core2"), 0, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("orders measured:", len(points))
	fmt.Println("first:", points[0].Label, "second:", points[1].Label)
	fmt.Println("same cycles:", points[0].CyclesOpt == points[1].CyclesOpt)
	// Output:
	// orders measured: 2
	// first: default second: alphabetical
	// same cycles: false
}

// Setup randomization draws environment sizes, link orders and code padding
// from a seeded generator, so robust estimates are exactly reproducible.
func ExampleEstimateSpeedup() {
	r := biaslab.NewRunner(biaslab.SizeTest)
	b, _ := biaslab.Benchmark("milc")
	est, err := biaslab.EstimateSpeedup(context.Background(), r, b, biaslab.DefaultSetup("m5"), 5, 42)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("samples:", est.N)
	fmt.Println("interval contains mean:", est.TInterval.Contains(est.Mean))
	// Output:
	// samples: 5
	// interval contains mean: true
}
